//! The work-stealing executor.
//!
//! See the crate-level docs for the scheduling model.  Everything here is
//! safe code: the per-worker deque is one atomic `(lo, hi)` range, outputs
//! are accumulated worker-locally and scattered into index order after the
//! join, and worker threads are scoped so tasks may borrow the caller's
//! data.  This module is the only place in the workspace allowed to spawn
//! threads for data parallelism.
//!
//! ## Panic isolation
//!
//! Task steps run inside `catch_unwind`: a panicking task cancels the rest
//! of the map through an internal abort token, the scope joins cleanly, and
//! the panic surfaces as a structured [`TaskError`] — from
//! [`Runtime::try_map_with_cancel`] as `Err(TaskError)`, from the
//! infallible `map*` entry points as a caller-side panic raised *after* the
//! join.  Either way no worker thread unwinds through `join()`, so the
//! `Runtime` (including [`Runtime::global`]) stays reusable after any task
//! panic.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;
use std::time::Duration;

use crate::cancel::CancelToken;
use crate::deque::RangeQueue;
use crate::faults;
use crate::sync::{self, AtomicUsize, Ordering};

/// Number of executor threads used when `QGP_THREADS` is not set: the
/// machine's available parallelism.
fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parses a `QGP_THREADS`-style override; falls back when absent or invalid.
fn parse_threads(var: Option<&str>, fallback: usize) -> usize {
    var.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(fallback)
        .max(1)
}

/// On-CPU time of the calling thread in nanoseconds, from the kernel's
/// scheduler accounting (`sum_exec_runtime`, the first field of
/// `/proc/thread-self/schedstat`).  `None` when unavailable (non-Linux or
/// `/proc` unmounted).
///
/// This is what makes the per-worker busy times meaningful on an
/// oversubscribed host: wall-clock timing of concurrent workers
/// double-counts the time a preempted worker spends waiting for a core,
/// while CPU accounting measures the work itself.
fn thread_cpu_ns() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    stat.split_whitespace().next()?.parse().ok()
}

/// Runs `f`, measuring its busy time as on-CPU time (kernel scheduler
/// accounting) with a wall-clock fallback — the one definition every
/// sequential execution path shares.
fn run_measured<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let cpu0 = thread_cpu_ns();
    let t0 = sync::now();
    let result = f();
    let busy = match (cpu0, thread_cpu_ns()) {
        (Some(a), Some(b)) if b >= a => Duration::from_nanos(b - a),
        _ => sync::now().saturating_duration_since(t0),
    };
    (result, busy)
}

/// A panic captured from one task (or one worker's state initializer),
/// reported with enough structure to log, retry, or surface per-query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskError {
    /// Index of the worker the panic occurred on (0 is the caller).
    pub worker: usize,
    /// Index of the task that panicked; `None` when the per-worker state
    /// initializer (not a task) panicked.
    pub index: Option<usize>,
    /// The panic payload rendered as a string (`&str`/`String` payloads
    /// verbatim, anything else a placeholder).
    pub payload: String,
}

impl TaskError {
    /// Builds a `TaskError` from a payload caught by
    /// [`std::panic::catch_unwind`], rendering `&str`/`String` payloads
    /// verbatim and anything else as a placeholder.  For callers that run
    /// their own `catch_unwind` (e.g. sequential fallbacks) and want the
    /// same error shape the executor produces.
    pub fn from_panic(
        worker: usize,
        index: Option<usize>,
        payload: Box<dyn std::any::Any + Send>,
    ) -> Self {
        TaskError {
            worker,
            index,
            payload: payload_to_string(payload),
        }
    }
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.index {
            Some(i) => write!(
                f,
                "task {i} panicked on worker {}: {}",
                self.worker, self.payload
            ),
            None => write!(
                f,
                "worker {} state initializer panicked: {}",
                self.worker, self.payload
            ),
        }
    }
}

impl std::error::Error for TaskError {}

/// Renders a caught panic payload for [`TaskError::payload`].
fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// What one worker hands back after the join: its `(index, output)` pairs,
/// its scratch state, and its busy time.
type WorkerResult<O, S> = (Vec<(u32, O)>, S, Duration);

/// The result of one parallel map: the per-index outputs (in index order,
/// regardless of which worker produced them), plus the per-worker scratch
/// states and busy times for aggregation.
#[derive(Debug)]
pub struct MapOutcome<O, S> {
    /// `outputs[i]` is the result of the step function on index `i`.
    pub outputs: Vec<O>,
    /// The per-worker scratch states, one per worker that ran (at most
    /// [`Runtime::threads`]).
    pub states: Vec<S>,
    /// Busy time of each worker: its on-CPU time over the run (kernel
    /// scheduler accounting, so concurrent workers on an oversubscribed
    /// host are not double-counted), falling back to summed wall time of
    /// its executed blocks where CPU accounting is unavailable.  The
    /// maximum is the run's *critical path*: the wall clock a deployment
    /// with one core per worker would observe.
    pub worker_busy: Vec<Duration>,
    /// Number of successful steals — >0 means the initial static split was
    /// imbalanced and the executor rebalanced it dynamically.
    pub steals: usize,
}

impl<O, S> MapOutcome<O, S> {
    /// Total busy time across workers (the sequential-equivalent work).
    pub fn total_busy(&self) -> Duration {
        self.worker_busy.iter().sum()
    }

    /// The critical path: the largest per-worker busy time.
    pub fn critical_path(&self) -> Duration {
        self.worker_busy.iter().max().copied().unwrap_or_default()
    }
}

/// A work-stealing executor with a fixed number of worker threads.
///
/// `Runtime` is cheap to construct — threads are scoped to each
/// [`Runtime::map_with`] call (so tasks can borrow caller data without
/// `'static` bounds), while per-worker scratch state persists across all
/// blocks a worker executes within a call.  Use [`Runtime::global`] for the
/// process-wide instance configured by the `QGP_THREADS` environment
/// variable.
#[derive(Debug, Clone)]
pub struct Runtime {
    threads: usize,
}

impl Runtime {
    /// An executor with the given number of worker threads (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Runtime {
            threads: threads.max(1),
        }
    }

    /// The process-wide executor: `QGP_THREADS` when set to a positive
    /// integer, otherwise the machine's available parallelism.
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let var = std::env::var("QGP_THREADS").ok();
            Runtime::new(parse_threads(var.as_deref(), default_threads()))
        })
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Parallel map without per-worker state.
    pub fn map<O, F>(&self, len: usize, step: F) -> MapOutcome<O, ()>
    where
        O: Send,
        F: Fn(usize) -> O + Sync,
    {
        self.map_with(len, || (), |(), i| step(i))
    }

    /// Parallel map with per-worker scratch state and a default grain.
    ///
    /// `init` runs once on each worker thread that participates; `step` runs
    /// once per index with that worker's state.  Outputs come back in index
    /// order, so results are deterministic no matter how work was stolen.
    pub fn map_with<S, O, I, F>(&self, len: usize, init: I, step: F) -> MapOutcome<O, S>
    where
        S: Send,
        O: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> O + Sync,
    {
        self.map_with_grain(len, self.default_grain(len), init, step)
    }

    /// [`Runtime::map_with`] with an explicit stealing granularity.
    ///
    /// A panicking task does not unwind through the executor: the map is
    /// aborted, every worker joins cleanly, and the panic is re-raised on
    /// the calling thread with the captured [`TaskError`] as its message —
    /// the `Runtime` remains reusable.  Callers that want the error as a
    /// value use [`Runtime::try_map_with_cancel`].
    pub fn map_with_grain<S, O, I, F>(
        &self,
        len: usize,
        grain: usize,
        init: I,
        step: F,
    ) -> MapOutcome<O, S>
    where
        S: Send,
        O: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> O + Sync,
    {
        let outcome = match self.map_impl(len, grain, None, init, step) {
            Ok(outcome) => outcome,
            // Clean re-raise after the scope joined: no worker thread is
            // left running and no double-panic is possible here.
            Err(e) => panic!("{e}"),
        };
        MapOutcome {
            outputs: outcome
                .outputs
                .into_iter()
                .map(|o| o.expect("uncancelled maps execute every index"))
                .collect(),
            states: outcome.states,
            worker_busy: outcome.worker_busy,
            steals: outcome.steals,
        }
    }

    /// Cancellation-aware parallel map: like [`Runtime::map_with`], but
    /// workers poll `cancel` between tasks and stop claiming (and stealing)
    /// work once it fires.  Skipped indices come back as `None`; executed
    /// ones as `Some(output)`.
    ///
    /// Cancellation is cooperative — a task that already started runs to
    /// completion — so per-worker states are always returned intact and the
    /// runtime is immediately reusable for the next map.
    ///
    /// Panics in tasks are re-raised on the caller after a clean join, as
    /// in [`Runtime::map_with_grain`]; use [`Runtime::try_map_with_cancel`]
    /// to receive them as [`TaskError`] values instead.
    pub fn map_with_cancel<S, O, I, F>(
        &self,
        len: usize,
        cancel: &CancelToken,
        init: I,
        step: F,
    ) -> MapOutcome<Option<O>, S>
    where
        S: Send,
        O: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> O + Sync,
    {
        match self.try_map_with_cancel(len, cancel, init, step) {
            Ok(outcome) => outcome,
            Err(e) => panic!("{e}"),
        }
    }

    /// Panic-isolating, cancellation-aware parallel map: the engine-facing
    /// entry point of the fault-tolerance layer.
    ///
    /// A panic in `init` or in any task aborts the map (remaining indices
    /// are skipped, in-flight tasks finish or panic on their own), every
    /// worker joins cleanly, and the first captured panic comes back as
    /// `Err(TaskError)`.  The `Runtime` — including the global instance —
    /// is reusable immediately afterwards.  Worker states are not returned
    /// on error: a state mutated by a panicking step is suspect and is
    /// dropped with the failed map.
    pub fn try_map_with_cancel<S, O, I, F>(
        &self,
        len: usize,
        cancel: &CancelToken,
        init: I,
        step: F,
    ) -> Result<MapOutcome<Option<O>, S>, TaskError>
    where
        S: Send,
        O: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> O + Sync,
    {
        self.map_impl(len, self.default_grain(len), Some(cancel), init, step)
    }

    /// Default stealing granularity: small enough to keep skewed items
    /// (hub candidates) stealable without making block claims measurable
    /// overhead.
    fn default_grain(&self, len: usize) -> usize {
        (len / (self.threads * 16)).clamp(1, 256)
    }

    /// Shared implementation: `None` for `cancel` means "never cancelled".
    fn map_impl<S, O, I, F>(
        &self,
        len: usize,
        grain: usize,
        cancel: Option<&CancelToken>,
        init: I,
        step: F,
    ) -> Result<MapOutcome<Option<O>, S>, TaskError>
    where
        S: Send,
        O: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> O + Sync,
    {
        assert!(len <= u32::MAX as usize, "task list exceeds u32 index space");
        let workers = self.threads.min(len.max(1));
        if workers <= 1 {
            // Inline sequential fast path: no threads, no atomics.  Panic
            // isolation still applies — the engine's QGP_THREADS=1 leg must
            // degrade identically to the parallel one.
            let mut state = match catch_unwind(AssertUnwindSafe(&init)) {
                Ok(s) => s,
                Err(p) => {
                    return Err(TaskError {
                        worker: 0,
                        index: None,
                        payload: payload_to_string(p),
                    })
                }
            };
            let mut outputs: Vec<Option<O>> = Vec::with_capacity(len);
            let mut caught = None;
            let ((), busy) = run_measured(|| {
                for i in 0..len {
                    if cancel.is_some_and(CancelToken::is_cancelled) {
                        break;
                    }
                    let run = catch_unwind(AssertUnwindSafe(|| {
                        faults::fault_point("task", i);
                        step(&mut state, i)
                    }));
                    match run {
                        Ok(o) => outputs.push(Some(o)),
                        Err(p) => {
                            caught = Some(TaskError {
                                worker: 0,
                                index: Some(i),
                                payload: payload_to_string(p),
                            });
                            break;
                        }
                    }
                }
            });
            if let Some(e) = caught {
                return Err(e);
            }
            outputs.resize_with(len, || None);
            return Ok(MapOutcome {
                outputs,
                states: vec![state],
                worker_busy: vec![busy],
                steals: 0,
            });
        }

        // Static contiguous split as the starting point; stealing corrects
        // whatever imbalance the split hides.
        let base = len / workers;
        let rem = len % workers;
        let mut queues = Vec::with_capacity(workers);
        let mut next = 0usize;
        for w in 0..workers {
            let take = base + usize::from(w < rem);
            queues.push(RangeQueue::new(next as u32, (next + take) as u32));
            next += take;
        }
        debug_assert_eq!(next, len);
        let steals = AtomicUsize::new(0);
        let grain = grain.clamp(1, u32::MAX as usize) as u32;
        // The fail-fast channel: the first panicking worker trips this so
        // its siblings stop claiming and stealing work.
        let abort = CancelToken::new();

        // Fault-injection scope follows the caller's thread: spawned
        // workers inherit whether this map participates in an armed plan.
        let inject = faults::thread_participates();

        let results: Vec<Result<WorkerResult<O, S>, TaskError>> = sync::scope(|scope| {
            let queues = &queues;
            let steals = &steals;
            let abort = &abort;
            let init = &init;
            let step = &step;
            let handles: Vec<_> = (1..workers)
                .map(|w| {
                    scope.spawn(move || {
                        faults::set_participating(inject);
                        worker_loop(w, queues, grain, cancel, abort, init, step, steals)
                    })
                })
                .collect();
            // The calling thread is worker 0.
            let mut all = vec![worker_loop(0, queues, grain, cancel, abort, init, step, steals)];
            all.extend(handles.into_iter().enumerate().map(|(k, h)| {
                // Worker panics are caught inside `worker_loop`; a join
                // error can only come from a panic that escaped it (e.g. a
                // non-unwinding-safe drop).  Capture the payload instead of
                // re-panicking while other handles are still pending.
                h.join().unwrap_or_else(|p| {
                    Err(TaskError {
                        worker: k + 1,
                        index: None,
                        payload: payload_to_string(p),
                    })
                })
            }));
            all
        });

        // Scatter worker-local outputs back into index order.  Under
        // cancellation some indices were never executed; their slots stay
        // `None`.  The first captured panic wins and discards the map.
        let mut slots: Vec<Option<O>> = std::iter::repeat_with(|| None).take(len).collect();
        let mut states = Vec::with_capacity(results.len());
        let mut worker_busy = Vec::with_capacity(results.len());
        let mut first_error: Option<TaskError> = None;
        for result in results {
            let (pairs, state, busy) = match result {
                Ok(r) => r,
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                    continue;
                }
            };
            for (i, o) in pairs {
                debug_assert!(slots[i as usize].is_none(), "index {i} executed twice");
                slots[i as usize] = Some(o);
            }
            states.push(state);
            worker_busy.push(busy);
        }
        if let Some(e) = first_error {
            return Err(e);
        }
        Ok(MapOutcome {
            outputs: slots,
            states,
            worker_busy,
            // relaxed: read after the scope joined every worker, so all
            // fetch_adds happen-before this load via the joins; the counter
            // is statistics, not synchronization.
            steals: steals.load(Ordering::Relaxed),
        })
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::new(default_threads())
    }
}

/// One worker: drain the own queue in grain-sized blocks; when it runs dry,
/// steal the upper half of the richest victim; exit when every queue is
/// empty.  Claimed-but-unfinished blocks are not in any queue, so the
/// residual imbalance at exit is bounded by `grain` items per worker.
/// When a cancel token is present it is polled between tasks; once it (or
/// the internal abort token) fires, the worker abandons its remaining range
/// and exits.  A panicking task is caught here: the worker trips `abort`
/// and reports a [`TaskError`] instead of unwinding through the join.
#[allow(clippy::too_many_arguments)]
fn worker_loop<S, O, I, F>(
    me: usize,
    queues: &[RangeQueue],
    grain: u32,
    cancel: Option<&CancelToken>,
    abort: &CancelToken,
    init: &I,
    step: &F,
    steals: &AtomicUsize,
) -> Result<WorkerResult<O, S>, TaskError>
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> O + Sync,
{
    let mut state = match catch_unwind(AssertUnwindSafe(init)) {
        Ok(s) => s,
        Err(p) => {
            abort.cancel();
            return Err(TaskError {
                worker: me,
                index: None,
                payload: payload_to_string(p),
            });
        }
    };
    let stop = || cancel.is_some_and(CancelToken::is_cancelled) || abort.is_cancelled();
    let mut out = Vec::new();
    let cpu_start = thread_cpu_ns();
    let mut wall_busy = Duration::ZERO;
    'work: loop {
        while let Some((a, b)) = queues[me].claim(grain) {
            let t0 = sync::now();
            // Track the in-flight index so a panic anywhere in the block is
            // attributed to the task that raised it.
            let current = Cell::new(a);
            let run = catch_unwind(AssertUnwindSafe(|| {
                for i in a..b {
                    if stop() {
                        return false;
                    }
                    current.set(i);
                    faults::fault_point("task", i as usize);
                    out.push((i, step(&mut state, i as usize)));
                }
                true
            }));
            wall_busy += sync::now().saturating_duration_since(t0);
            match run {
                Ok(true) => {}
                Ok(false) => break 'work,
                Err(p) => {
                    abort.cancel();
                    return Err(TaskError {
                        worker: me,
                        index: Some(current.get() as usize),
                        payload: payload_to_string(p),
                    });
                }
            }
        }
        if stop() {
            break 'work;
        }
        // Own queue dry: look for the richest victim.
        loop {
            let mut best: Option<(usize, u32)> = None;
            for (v, q) in queues.iter().enumerate() {
                if v == me {
                    continue;
                }
                let l = q.len();
                if l >= 1 && best.is_none_or(|(_, bl)| l > bl) {
                    best = Some((v, l));
                }
            }
            match best {
                Some((victim, _)) => {
                    if let Some((lo, hi)) = queues[victim].steal_half() {
                        // relaxed: a monotonic statistics counter — nothing
                        // is published through it; the caller reads it only
                        // after joining this worker.
                        steals.fetch_add(1, Ordering::Relaxed);
                        queues[me].install(lo, hi);
                        continue 'work;
                    }
                    // Lost the race; rescan.
                }
                // Every queue is empty.  Unexecuted work can only live in
                // a queue or in the hands of the thief that just CASed it
                // out (and will execute it itself), so nothing is left for
                // this worker: exit without spinning.
                None => break 'work,
            }
        }
    }
    let busy = match (cpu_start, thread_cpu_ns()) {
        (Some(a), Some(b)) if b >= a => Duration::from_nanos(b - a),
        _ => wall_busy,
    };
    Ok((out, state, busy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn map_matches_sequential_for_every_thread_count() {
        for threads in [1, 2, 3, 4, 7] {
            let rt = Runtime::new(threads);
            for len in [0usize, 1, 2, 5, 64, 257, 1000] {
                let outcome = rt.map(len, |i| i * 3 + 1);
                let expected: Vec<usize> = (0..len).map(|i| i * 3 + 1).collect();
                assert_eq!(outcome.outputs, expected, "threads={threads} len={len}");
                assert!(outcome.states.len() <= threads.max(1));
            }
        }
    }

    #[test]
    fn per_worker_state_sees_every_index_exactly_once() {
        let rt = Runtime::new(4);
        let len = 10_000;
        let outcome = rt.map_with(len, Vec::new, |seen: &mut Vec<usize>, i| seen.push(i));
        let mut all: Vec<usize> = outcome.states.into_iter().flatten().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..len).collect();
        assert_eq!(all, expected);
        assert_eq!(outcome.outputs.len(), len);
    }

    #[test]
    fn skewed_workload_triggers_stealing() {
        // All the cost sits in the first indices: the static split gives them
        // to worker 0, so the other workers must steal to stay busy.  With
        // grain 1 every heavy item is individually stealable.
        let rt = Runtime::new(4);
        let len = 64;
        let outcome = rt.map_with_grain(len, 1, || (), |(), i| {
            if i < 16 {
                // A few hundred µs of real work per "hub" item.
                let mut acc = 0u64;
                for k in 0..200_000u64 {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                std::hint::black_box(acc);
            }
            i
        });
        assert_eq!(outcome.outputs, (0..len).collect::<Vec<_>>());
        // On any scheduler interleaving, at least one idle worker finds the
        // loaded range stealable.
        assert!(outcome.steals > 0, "expected dynamic rebalancing");
        assert!(outcome.critical_path() <= outcome.total_busy());
    }

    #[test]
    fn single_thread_runtime_runs_inline() {
        let rt = Runtime::new(1);
        let on_caller = AtomicBool::new(false);
        let caller = std::thread::current().id();
        let outcome = rt.map(8, |i| {
            if std::thread::current().id() == caller {
                on_caller.store(true, Ordering::Relaxed);
            }
            i
        });
        assert!(on_caller.load(Ordering::Relaxed));
        assert_eq!(outcome.steals, 0);
        assert_eq!(outcome.states.len(), 1);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Runtime::new(0).threads(), 1);
    }

    #[test]
    fn env_override_parsing() {
        assert_eq!(parse_threads(Some("4"), 2), 4);
        assert_eq!(parse_threads(Some(" 8 "), 2), 8);
        assert_eq!(parse_threads(Some("0"), 2), 2);
        assert_eq!(parse_threads(Some("nope"), 2), 2);
        assert_eq!(parse_threads(None, 3), 3);
        assert_eq!(parse_threads(None, 0), 1);
    }

    #[test]
    fn cancelled_map_skips_remaining_work_and_stays_reusable() {
        for threads in [1, 4] {
            let rt = Runtime::new(threads);
            let token = CancelToken::new();
            let executed = AtomicUsize::new(0);
            let outcome = rt.map_with_cancel(10_000, &token, || (), |(), i| {
                executed.fetch_add(1, Ordering::Relaxed);
                if i == 3 {
                    token.cancel();
                }
                i
            });
            let done = outcome.outputs.iter().flatten().count();
            assert!(done >= 1, "threads={threads}: some work ran before cancel");
            assert!(
                done < 10_000,
                "threads={threads}: cancellation must skip work"
            );
            assert_eq!(done, executed.load(Ordering::Relaxed));
            // Executed outputs sit at their own index.
            for (i, o) in outcome.outputs.iter().enumerate() {
                if let Some(v) = o {
                    assert_eq!(*v, i);
                }
            }
            // The runtime is not poisoned: a fresh map on the same instance
            // completes fully.
            let again = rt.map_with_cancel(100, &CancelToken::new(), || (), |(), i| i);
            assert_eq!(again.outputs.iter().flatten().count(), 100);
        }
    }

    #[test]
    fn pre_cancelled_map_returns_all_none() {
        let rt = Runtime::new(3);
        let token = CancelToken::new();
        token.cancel();
        let outcome = rt.map_with_cancel(64, &token, || (), |(), i| i);
        assert_eq!(outcome.outputs.len(), 64);
        assert!(outcome.outputs.iter().all(Option::is_none));
        assert!(!outcome.states.is_empty());
    }

    #[test]
    fn states_and_busy_are_reported_per_worker() {
        let rt = Runtime::new(3);
        let outcome = rt.map_with(300, || 1usize, |s, _| *s);
        assert_eq!(outcome.outputs.len(), 300);
        assert!(!outcome.states.is_empty() && outcome.states.len() <= 3);
        assert_eq!(outcome.worker_busy.len(), outcome.states.len());
    }

    #[test]
    fn task_panic_surfaces_as_task_error_and_runtime_stays_reusable() {
        for threads in [1, 2, 4] {
            let rt = Runtime::new(threads);
            let err = rt
                .try_map_with_cancel(1000, &CancelToken::new(), || (), |(), i| {
                    if i == 137 {
                        panic!("boom at {i}");
                    }
                    i
                })
                .expect_err("task 137 panics");
            assert_eq!(err.index, Some(137), "threads={threads}");
            assert!(err.worker < threads, "threads={threads}: {err:?}");
            assert!(err.payload.contains("boom at 137"), "{err:?}");
            // The runtime serves the next map on the same instance.
            let again = rt
                .try_map_with_cancel(100, &CancelToken::new(), || (), |(), i| i * 2)
                .expect("fault-free retry succeeds");
            assert_eq!(again.outputs.iter().flatten().count(), 100);
        }
    }

    #[test]
    fn init_panic_surfaces_with_no_index() {
        for threads in [1, 3] {
            let rt = Runtime::new(threads);
            let err = rt
                .try_map_with_cancel(
                    64,
                    &CancelToken::new(),
                    || -> usize { panic!("init failed") },
                    |s, _| *s,
                )
                .expect_err("init panics");
            assert_eq!(err.index, None, "threads={threads}");
            assert!(err.payload.contains("init failed"));
        }
    }

    #[test]
    fn panic_aborts_remaining_work_fail_fast() {
        // After the panic trips the abort token, siblings stop claiming:
        // far fewer than all indices execute.
        let rt = Runtime::new(4);
        let executed = AtomicUsize::new(0);
        let err = rt
            .try_map_with_cancel(100_000, &CancelToken::new(), || (), |(), i| {
                executed.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    panic!("first task dies");
                }
                i
            })
            .expect_err("task 0 panics");
        assert_eq!(err.index, Some(0));
        assert!(
            executed.load(Ordering::Relaxed) < 100_000,
            "abort must skip most of the map"
        );
    }

    #[test]
    fn infallible_map_reraises_on_caller_after_clean_join() {
        let rt = Runtime::new(4);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            rt.map(64, |i| if i == 7 { panic!("inner") } else { i });
        }))
        .expect_err("panic re-raised on caller");
        let msg = payload_to_string(caught);
        assert!(msg.contains("task 7 panicked"), "{msg}");
        assert!(msg.contains("inner"), "{msg}");
        // Reusable afterwards.
        assert_eq!(rt.map(10, |i| i).outputs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn global_runtime_survives_a_task_panic() {
        let rt = Runtime::global();
        let _ = rt.try_map_with_cancel(256, &CancelToken::new(), || (), |(), i| {
            if i % 2 == 0 {
                panic!("even tasks die");
            }
            i
        });
        let outcome = rt
            .try_map_with_cancel(256, &CancelToken::new(), || (), |(), i| i + 1)
            .expect("global runtime reusable after panic");
        assert_eq!(outcome.outputs.iter().flatten().count(), 256);
    }

    #[test]
    fn injected_faults_surface_as_task_errors() {
        let _guard = faults::install(faults::FaultPlan::new(1234, 0.05));
        let rt = Runtime::new(4);
        let mut saw_error = false;
        for _ in 0..20 {
            match rt.try_map_with_cancel(64, &CancelToken::new(), || (), |(), i| i) {
                Ok(outcome) => assert_eq!(outcome.outputs.len(), 64),
                Err(e) => {
                    assert!(e.payload.contains("injected fault"), "{e:?}");
                    saw_error = true;
                }
            }
        }
        assert!(saw_error, "5% fault rate over 20×64 tasks must fire");
    }
}

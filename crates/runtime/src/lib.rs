//! # qgp-runtime
//!
//! The shared work-stealing executor every parallel workload of the QGP
//! stack schedules through: `PQMatch` focus-candidate verification, `DPar`
//! neighborhood scans, and QGAR seed-rule mining.
//!
//! ## Design
//!
//! The unit of scheduling is an **index range** over a flat task list, not a
//! boxed closure.  Each worker owns one Chase-Lev-style deque collapsed to
//! its minimal form: a single atomic `(lo, hi)` range packed into a `u64`.
//! The owner claims grain-sized blocks from the bottom (`lo`), idle workers
//! steal the upper half from the top (`hi`) with one CAS — the classic
//! lazy-binary-splitting scheme.  Because tasks are plain indices, a steal
//! victim "splits its remaining candidates" for free: no task objects exist
//! until an index is executed.
//!
//! Every worker carries **per-worker scratch state** created once when the
//! worker starts and reused across every block it claims or steals — this is
//! where `PQMatch` keeps its per-fragment matcher sessions and `DPar` its
//! BFS scratch, instead of rebuilding them per chunk.  The states are
//! returned to the caller after the join so statistics can be aggregated.
//!
//! Wall-clock speedups on a multi-core host follow the paper's Fig. 8
//! curves; on a single-core CI container the executor still interleaves real
//! OS threads (so concurrency bugs surface) and the per-worker busy times in
//! [`MapOutcome::worker_busy`] expose the *critical path* — the wall clock an
//! n-core deployment would observe.
//!
//! ```
//! use qgp_runtime::Runtime;
//!
//! let rt = Runtime::new(4);
//! // Square 0..100 in parallel, each worker counting how many items it ran.
//! let outcome = rt.map_with(100, || 0usize, |count, i| {
//!     *count += 1;
//!     i * i
//! });
//! assert_eq!(outcome.outputs[7], 49);
//! assert_eq!(outcome.states.iter().sum::<usize>(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod budget;
mod cancel;
mod deque;
mod executor;
pub mod faults;
pub mod sync;

pub use budget::{BudgetStop, ExecBudget};
pub use cancel::CancelToken;
pub use deque::RangeQueue;
pub use executor::{MapOutcome, Runtime, TaskError};

//! Cooperative cancellation.
//!
//! A [`CancelToken`] is the stack-wide stop signal: the prepared-query
//! engine hands one to every execution, the executor polls it between tasks,
//! and matcher sessions poll it between verification phases.  Cancellation
//! is *cooperative* — in-flight work finishes its current unit — so no
//! shared state is ever left half-updated and every runtime, session and
//! prepared query remains reusable after a cancelled run.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sync::{self, AtomicBool, Ordering};

/// A cheaply cloneable cancellation/deadline token.
///
/// Clones share one flag: cancelling any clone cancels them all.  A token
/// may carry a deadline, after which it reports itself cancelled without
/// anyone calling [`CancelToken::cancel`] (the deadline is latched into the
/// flag on first observation, so later polls are a single atomic load).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that is only cancelled explicitly.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that also reports cancelled once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token with a deadline `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(sync::now() + timeout)
    }

    /// Requests cancellation.  Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Has cancellation been requested (or the deadline passed)?
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) if sync::now() >= deadline => {
                self.inner.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// The deadline, when one was set at construction.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn expired_deadline_reports_cancelled() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        // Latched: still cancelled on re-poll.
        assert!(t.is_cancelled());
        assert!(t.deadline().is_some());
    }

    #[test]
    fn future_deadline_is_not_cancelled_yet() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }
}

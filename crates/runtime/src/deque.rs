//! The collapsed work-stealing deque: one atomic `(lo, hi)` range.
//!
//! This is the executor's Chase-Lev deque reduced to its minimal form for
//! index-range scheduling: the owner claims grain-sized blocks from the
//! bottom (`lo`) with a CAS, thieves split off the upper half by moving
//! `hi` down with a CAS, and a worker that stole a range publishes it into
//! its own (empty) queue with a release store.  Ranges are disjoint by
//! construction — they only ever arise from splits of the initial `0..len`
//! space — so every index is executed exactly once.
//!
//! ## Ordering contract (verified by `tests/model_deque.rs`)
//!
//! The single-word accounting is correct under any ordering: per-location
//! coherence already guarantees claims and steals hand out disjoint
//! sub-ranges.  What *does* need ordering is publication: when a thief
//! installs a stolen range and later task data is read through it, the
//! install's `Release` paired with the next reader's `Acquire` is the edge
//! that makes prior writes visible.  The mutation self-test (`--cfg
//! qgp_mutate`, CI job `check`) weakens exactly that store and asserts the
//! model checker reports the resulting race — proving the checker still
//! guards this contract.

use crate::sync::{AtomicU64, Ordering};

/// Ordering of [`RangeQueue::install`]'s publishing store.  `Release` pairs
/// with the `Acquire` loads in [`RangeQueue::claim`]/[`RangeQueue::len`] to
/// publish everything that happened before the steal.
#[cfg(not(qgp_mutate))]
const INSTALL_ORDER: Ordering = Ordering::Release;
/// Mutated install ordering for the checker's self-test: deliberately
/// wrong, so the model suite must report a publication race.
// relaxed: qgp_mutate only — the mutation self-test asserts qgp-check
// catches this weakening; never compiled into production builds.
#[cfg(qgp_mutate)]
const INSTALL_ORDER: Ordering = Ordering::Relaxed;

/// One worker's deque: a `(lo, hi)` index range packed into a single atomic
/// word.  The owner claims grain-sized blocks from `lo`; thieves split off
/// the upper half by moving `hi` down with one CAS.  See the module docs
/// for the ordering contract.
#[derive(Debug)]
pub struct RangeQueue(AtomicU64);

fn pack(lo: u32, hi: u32) -> u64 {
    (u64::from(lo) << 32) | u64::from(hi)
}

fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

impl RangeQueue {
    /// A queue owning the range `lo..hi`.
    pub fn new(lo: u32, hi: u32) -> Self {
        RangeQueue(AtomicU64::new(pack(lo, hi)))
    }

    /// Remaining items in the range.
    pub fn len(&self) -> u32 {
        let (lo, hi) = unpack(self.0.load(Ordering::Acquire));
        hi.saturating_sub(lo)
    }

    /// Is the range drained?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Installs a freshly stolen range.  Only ever called by the queue's
    /// owner, and only while the queue is empty, so no work can be lost.
    /// The release store publishes the steal to the next acquiring reader.
    pub fn install(&self, lo: u32, hi: u32) {
        self.0.store(pack(lo, hi), INSTALL_ORDER);
    }

    /// Owner side: claims up to `grain` items from the bottom of the range.
    pub fn claim(&self, grain: u32) -> Option<(u32, u32)> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let take = grain.min(hi - lo);
            match self.0.compare_exchange_weak(
                cur,
                pack(lo + take, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((lo, lo + take)),
                Err(now) => cur = now,
            }
        }
    }

    /// Thief side: splits off the upper half of the range, rounded up — a
    /// single leftover item is stolen whole, so work never serializes
    /// behind a long task its owner is still executing.
    pub fn steal_half(&self) -> Option<(u32, u32)> {
        let mut cur = self.0.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let mid = lo + (hi - lo) / 2;
            match self.0.compare_exchange_weak(
                cur,
                pack(lo, mid),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((mid, hi)),
                Err(now) => cur = now,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_and_steal_are_disjoint() {
        let q = RangeQueue::new(0, 100);
        let (a, b) = q.claim(10).unwrap();
        assert_eq!((a, b), (0, 10));
        let (lo, hi) = q.steal_half().unwrap();
        assert_eq!((lo, hi), (55, 100));
        assert_eq!(q.len(), 45);
        assert!(!q.is_empty());
        // Drain the rest; every index comes out exactly once.
        let mut seen: Vec<u32> = (a..b).chain(lo..hi).collect();
        while let Some((x, y)) = q.claim(7) {
            seen.extend(x..y);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        assert!(q.steal_half().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn singleton_range_is_stolen_whole() {
        let q = RangeQueue::new(9, 10);
        assert_eq!(q.steal_half(), Some((9, 10)));
        assert!(q.is_empty());
        assert_eq!(q.claim(4), None);
    }

    #[test]
    fn install_replaces_an_empty_queue() {
        let q = RangeQueue::new(0, 0);
        assert!(q.is_empty());
        q.install(20, 30);
        assert_eq!(q.len(), 10);
        assert_eq!(q.claim(100), Some((20, 30)));
    }
}

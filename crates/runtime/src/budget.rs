//! Execution budgets: deadline + decision cap + cancel flag in one handle.
//!
//! [`ExecBudget`] generalizes [`CancelToken`] for per-query resource
//! control.  A budget carries the stack-wide stop signal (so the executor
//! keeps polling a plain token), an optional wall-clock deadline (latched
//! into the token, inherited from [`CancelToken`]), and an optional cap on
//! *decisions* — the number of focus candidates a query execution is
//! allowed to verify.  Every execution path charges the budget once per
//! candidate via [`ExecBudget::charge`]; the first charge past the cap (or
//! past the deadline) trips the shared token, so parallel workers, the
//! sequential `Matches` stream, and view repair all stop at per-candidate
//! granularity.
//!
//! Clones share one ledger: charging any clone charges them all, which is
//! what lets a parallel fan-out enforce a single global cap.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cancel::CancelToken;
use crate::sync::{self, AtomicU64, Ordering};

/// Why a budget stopped an execution early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetStop {
    /// The shared cancel flag was tripped explicitly (or by a sibling
    /// clone exhausting the budget).
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExpired,
    /// The decision cap was consumed.
    DecisionsExhausted,
}

/// A shareable execution budget: cancel flag + optional deadline +
/// optional decision cap.
///
/// The default budget is unlimited — it only stops when explicitly
/// [cancelled](ExecBudget::cancel).
#[derive(Debug, Clone, Default)]
pub struct ExecBudget {
    token: CancelToken,
    max_decisions: Option<u64>,
    used: Arc<AtomicU64>,
}

impl ExecBudget {
    /// An unlimited budget (explicit cancellation only).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget that expires at `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        ExecBudget {
            token: CancelToken::with_deadline(deadline),
            ..Self::default()
        }
    }

    /// A budget that expires `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(sync::now() + timeout)
    }

    /// Caps the number of decisions this budget will fund.
    pub fn max_decisions(mut self, max: u64) -> Self {
        self.max_decisions = Some(max);
        self
    }

    /// Requests cancellation; visible to every clone and to the executor.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Charges `n` decisions.  Returns `true` while the budget still has
    /// headroom; the charge that crosses the cap (or observes an expired
    /// deadline) trips the shared token and returns `false`.  Exhaustion
    /// is sticky: later charges keep returning `false`.
    pub fn charge(&self, n: u64) -> bool {
        if self.token.is_cancelled() {
            return false;
        }
        // relaxed: the ledger is a pure counter — no data is published
        // through `used`.  Cross-thread trip visibility flows through the
        // token instead: this fetch_add happens-before the `cancel()`
        // (Release) below on the tripping thread, so any thread that
        // observes the trip via `is_cancelled()` (Acquire) also observes
        // `used > max`.  Pinned by tests/model_budget.rs.
        let prior = self.used.fetch_add(n, Ordering::Relaxed);
        match self.max_decisions {
            Some(max) if prior.saturating_add(n) > max => {
                self.token.cancel();
                false
            }
            _ => true,
        }
    }

    /// Has the budget stopped (cancelled, deadline passed, or cap hit)?
    pub fn is_exhausted(&self) -> bool {
        self.token.is_cancelled()
    }

    /// Why the budget stopped, when it has.  Decision exhaustion wins over
    /// a raced deadline, deadline over plain cancellation.
    pub fn stop_reason(&self) -> Option<BudgetStop> {
        if !self.token.is_cancelled() {
            return None;
        }
        if self
            .max_decisions
            // relaxed: only reached after `is_cancelled()` returned true —
            // that Acquire load synchronizes with the tripping thread's
            // Release `cancel()`, which its crossing fetch_add precedes, so
            // an exhausted ledger is already visible here (model-pinned).
            .is_some_and(|max| self.used.load(Ordering::Relaxed) > max)
        {
            return Some(BudgetStop::DecisionsExhausted);
        }
        if self
            .token
            .deadline()
            .is_some_and(|deadline| sync::now() >= deadline)
        {
            return Some(BudgetStop::DeadlineExpired);
        }
        Some(BudgetStop::Cancelled)
    }

    /// Decisions charged so far (across all clones).
    pub fn decisions_used(&self) -> u64 {
        // relaxed: a monotonic statistics read; callers wanting an exact
        // figure read it after joining the charging threads, and the value
        // itself publishes nothing.
        self.used.load(Ordering::Relaxed)
    }

    /// The decision cap, when one was set.
    pub fn decision_cap(&self) -> Option<u64> {
        self.max_decisions
    }

    /// The underlying stop token: what the executor and matcher sessions
    /// poll.  Cancelling the token stops the budget and vice versa.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }
}

impl From<CancelToken> for ExecBudget {
    /// Wraps an existing token as an unlimited budget sharing its flag —
    /// the migration path for pre-budget `cancel_with` callers.
    fn from(token: CancelToken) -> Self {
        ExecBudget {
            token,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_stops_on_its_own() {
        let b = ExecBudget::unlimited();
        for _ in 0..10_000 {
            assert!(b.charge(1));
        }
        assert!(!b.is_exhausted());
        assert_eq!(b.stop_reason(), None);
        b.cancel();
        assert!(!b.charge(1));
        assert_eq!(b.stop_reason(), Some(BudgetStop::Cancelled));
    }

    #[test]
    fn decision_cap_trips_on_the_crossing_charge() {
        let b = ExecBudget::unlimited().max_decisions(3);
        assert!(b.charge(1));
        assert!(b.charge(1));
        assert!(b.charge(1));
        assert!(!b.charge(1), "4th decision exceeds a cap of 3");
        assert!(b.is_exhausted());
        assert_eq!(b.stop_reason(), Some(BudgetStop::DecisionsExhausted));
        assert!(!b.charge(1), "exhaustion is sticky");
        assert!(b.token().is_cancelled(), "cap trips the shared token");
    }

    #[test]
    fn clones_share_the_ledger() {
        let a = ExecBudget::unlimited().max_decisions(10);
        let b = a.clone();
        for _ in 0..5 {
            assert!(a.charge(1));
            assert!(b.charge(1));
        }
        assert!(!a.charge(1));
        assert!(b.is_exhausted());
        assert_eq!(a.decisions_used(), 11);
    }

    #[test]
    fn expired_deadline_stops_charges() {
        let b = ExecBudget::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(!b.charge(1));
        assert_eq!(b.stop_reason(), Some(BudgetStop::DeadlineExpired));
    }

    #[test]
    fn token_round_trip_shares_the_flag() {
        let token = CancelToken::new();
        let budget = ExecBudget::from(token.clone());
        token.cancel();
        assert!(budget.is_exhausted());

        let budget2 = ExecBudget::unlimited().max_decisions(0);
        assert!(!budget2.charge(1));
        assert!(budget2.token().is_cancelled());
    }
}

//! Model checks for `CancelToken`: fail-fast visibility, the
//! deadline-racing-cancel latch, and clean joins of polling workers.

#![cfg(feature = "model")]

use std::time::Duration;

use qgp_check::{explore, scope, Config, RaceCell};
use qgp_runtime::CancelToken;

/// The cancel edge publishes: data written before `cancel()` (Release) is
/// race-free for any thread that observed `is_cancelled()` (Acquire).
/// This is the edge the executor's fail-fast abort and the budget trip
/// both lean on.
#[test]
fn cancel_publishes_prior_writes() {
    let report = explore(&Config::exhaustive(), || {
        let token = CancelToken::new();
        let reason = RaceCell::named("abort-reason", 0u32);
        scope(|s| {
            let canceller = {
                let token = token.clone();
                let reason = &reason;
                s.spawn(move || {
                    reason.write(17);
                    token.cancel();
                })
            };
            let worker = {
                let token = token.clone();
                let reason = &reason;
                s.spawn(move || {
                    // A bounded work loop polling the token between units,
                    // exactly like the executor's workers.
                    for _ in 0..3 {
                        if token.is_cancelled() {
                            assert_eq!(reason.read(), 17);
                            return;
                        }
                    }
                })
            };
            canceller.join().expect("canceller");
            worker.join().expect("worker");
        });
        assert!(token.is_cancelled(), "after the join the flag is visible");
    });
    report.expect_ok("cancel_publishes_prior_writes");
    assert!(report.complete);
}

/// A deadline expiring concurrently with an explicit `cancel()`: whichever
/// path latches first, the token reports cancelled exactly once observed
/// and stays cancelled (the latch never un-trips), and both threads join
/// cleanly.
#[test]
fn deadline_racing_explicit_cancel_latches_once() {
    let report = explore(&Config::exhaustive(), || {
        // 3 virtual microseconds ≈ 3 scheduled operations away.
        let token = CancelToken::with_timeout(Duration::from_micros(3));
        scope(|s| {
            let canceller = {
                let token = token.clone();
                s.spawn(move || token.cancel())
            };
            let poller = {
                let token = token.clone();
                s.spawn(move || {
                    let mut polls = 0u32;
                    // Terminates regardless of which path trips: the
                    // explicit cancel or the virtual-time deadline.
                    while !token.is_cancelled() {
                        polls += 1;
                        assert!(polls < 64, "deadline bounds the poll loop");
                    }
                    // The latch is sticky whichever path set it.
                    assert!(token.is_cancelled());
                })
            };
            canceller.join().expect("canceller");
            poller.join().expect("poller");
        });
        assert!(token.is_cancelled());
        assert!(token.deadline().is_some());
    });
    report.expect_ok("deadline_racing_explicit_cancel_latches_once");
}

/// Clones share one flag: cancelling through any clone is seen by pollers
/// of every other clone, across threads.
#[test]
fn clones_share_the_flag_across_threads() {
    let report = explore(&Config::exhaustive(), || {
        let a = CancelToken::new();
        let b = a.clone();
        scope(|s| {
            let t = s.spawn(move || b.cancel());
            t.join().expect("canceller");
        });
        // Join edge: the cancel happens-before this observation.
        assert!(a.is_cancelled(), "clone's cancel visible after join");
    });
    report.expect_ok("clones_share_the_flag_across_threads");
    assert!(report.complete);
}

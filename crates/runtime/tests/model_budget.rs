//! Model checks pinning `ExecBudget`'s charge→trip visibility semantics —
//! the audit target of the `Ordering::Relaxed` ledger in
//! `crates/runtime/src/budget.rs` (see the `// relaxed:` comments there).
//!
//! The claim: `used` may be Relaxed because exhaustion visibility flows
//! through the token — the crossing `fetch_add` happens-before the
//! `cancel()` (Release) on the tripping thread, so any thread observing
//! `is_exhausted()` (Acquire) also observes the exhausted ledger and
//! anything else the tripping thread wrote before the charge.

#![cfg(feature = "model")]

use std::time::Duration;

use qgp_check::{explore, scope, Config, RaceCell};
use qgp_runtime::{BudgetStop, ExecBudget};

/// Exhaustively: once any observer sees the budget exhausted, the ledger
/// it reads has already crossed the cap — the Release/Acquire edge through
/// the token publishes the Relaxed counter.
#[test]
fn observed_exhaustion_implies_visible_ledger() {
    let report = explore(&Config::exhaustive(), || {
        let budget = ExecBudget::unlimited().max_decisions(1);
        scope(|s| {
            let charger = {
                let budget = budget.clone();
                s.spawn(move || {
                    let _ = budget.charge(1);
                    let _ = budget.charge(1);
                })
            };
            let observer = {
                let budget = budget.clone();
                s.spawn(move || {
                    if budget.is_exhausted() {
                        assert!(
                            budget.decisions_used() > 1,
                            "an observed trip must come with the exhausted \
                             ledger (used = {})",
                            budget.decisions_used()
                        );
                        assert_eq!(
                            budget.stop_reason(),
                            Some(BudgetStop::DecisionsExhausted)
                        );
                    }
                })
            };
            charger.join().expect("charger");
            observer.join().expect("observer");
        });
    });
    report.expect_ok("observed_exhaustion_implies_visible_ledger");
    assert!(report.complete, "two short threads must be fully enumerated");
}

/// The stronger form of the audit claim: data written before the crossing
/// charge is race-free for a reader that observed the trip.  If `charge`'s
/// trip path lost its Release edge (or `is_exhausted` its Acquire), the
/// checker would flag this cell.
#[test]
fn trip_publishes_prior_writes() {
    let report = explore(&Config::exhaustive(), || {
        let budget = ExecBudget::unlimited().max_decisions(0);
        let result = RaceCell::named("pre-trip-result", 0u32);
        scope(|s| {
            let worker = {
                let budget = budget.clone();
                let result = &result;
                s.spawn(move || {
                    result.write(99);
                    // Cap 0: this charge crosses and trips the token.
                    assert!(!budget.charge(1));
                })
            };
            let reader = {
                let budget = budget.clone();
                let result = &result;
                s.spawn(move || {
                    if budget.is_exhausted() {
                        assert_eq!(result.read(), 99);
                    }
                })
            };
            worker.join().expect("worker");
            reader.join().expect("reader");
        });
    });
    report.expect_ok("trip_publishes_prior_writes");
    assert!(report.complete);
}

/// Deadline budgets run on the scheduler's virtual clock (one microsecond
/// per operation): polling is guaranteed to observe expiry after a bounded,
/// deterministic number of operations.
#[test]
fn deadline_expiry_is_deterministic_under_virtual_time() {
    let report = explore(&Config::seeded(8).from_env(), || {
        let budget = ExecBudget::with_timeout(Duration::from_micros(5));
        let mut polls = 0u32;
        while !budget.is_exhausted() {
            polls += 1;
            assert!(
                polls < 64,
                "virtual time advances 1µs per op; a 5µs deadline must trip \
                 within a handful of polls"
            );
        }
        assert_eq!(budget.stop_reason(), Some(BudgetStop::DeadlineExpired));
        assert!(!budget.charge(1), "expired budgets reject charges");
    });
    report.expect_ok("deadline_expiry_is_deterministic_under_virtual_time");
}

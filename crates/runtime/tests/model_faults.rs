//! Model checks for the fault-injection harness: thread-scoped arming must
//! never leak to non-participating threads, and `install`/guard-drop
//! racing an armed worker's fault points must stay deadlock- and
//! crash-free.

#![cfg(feature = "model")]

use qgp_check::{explore, scope, Config};
use qgp_runtime::faults::{self, FaultPlan};

/// A plan with panic rate 1.0 is armed while a spawned worker that never
/// opted in passes fault points: the worker must sail through untouched
/// (thread-scoped arming), while the arming thread itself fires.
#[test]
fn arming_never_leaks_to_non_participating_threads() {
    let report = explore(&Config::seeded(16).from_env(), || {
        let guard = faults::install(FaultPlan::new(7, 1.0));
        scope(|s| {
            let bystander = s.spawn(|| {
                // Fresh threads never participate unless the spawner's
                // participation is handed over explicitly; a panic here
                // would surface as a property failure.
                for i in 0..3 {
                    faults::fault_point("bystander", i);
                }
                assert!(!faults::thread_participates());
            });
            bystander.join().expect("bystander must be untouched");
        });
        // The arming thread does observe the plan.
        assert!(faults::thread_participates());
        let fired = std::panic::catch_unwind(|| faults::fault_point("armed", 0)).is_err();
        assert!(fired, "rate-1.0 plan must fire on the participating thread");
        drop(guard);
        // Disarmed: the same call is inert again.
        faults::fault_point("armed", 1);
        assert!(!faults::thread_participates());
    });
    report.expect_ok("arming_never_leaks_to_non_participating_threads");
}

/// Guard drop (uninstall) racing a participating worker still inside fault
/// points: every interleaving must join cleanly — the worker either sees
/// the armed plan (and rolls its deterministic die) or the disarmed fast
/// path, never a deadlock or a poisoned state.
#[test]
fn uninstall_racing_armed_worker_is_clean() {
    let report = explore(&Config::seeded(24).from_env(), || {
        // Rate 0: arming bookkeeping only, no injected panics/delays.
        let guard = faults::install(FaultPlan::new(3, 0.0));
        let inherit = faults::thread_participates();
        scope(|s| {
            let worker = s.spawn(move || {
                faults::set_participating(inherit);
                for i in 0..4 {
                    faults::fault_point("worker", i);
                }
                faults::set_participating(false);
            });
            // Disarm while the worker may still be mid-fault-point.
            drop(guard);
            worker.join().expect("worker joins cleanly");
        });
        // The scope is fully torn down: nothing is armed afterwards.
        assert!(!faults::thread_participates());
        faults::fault_point("after", 0);
    });
    report.expect_ok("uninstall_racing_armed_worker_is_clean");
}

/// An armed delay plan sleeps on the virtual clock under the model: fault
/// points with delay rate 1.0 advance time instead of stalling the
/// scheduler, and the run still joins deterministically.
#[test]
fn delay_faults_use_virtual_time() {
    let report = explore(&Config::seeded(8).from_env(), || {
        let _guard = faults::install(FaultPlan::new(11, 0.0).with_delay_rate(1.0));
        let inherit = faults::thread_participates();
        scope(|s| {
            let worker = s.spawn(move || {
                faults::set_participating(inherit);
                for i in 0..3 {
                    faults::fault_point("delayed", i);
                }
                faults::set_participating(false);
            });
            worker.join().expect("delayed worker joins");
        });
    });
    report.expect_ok("delay_faults_use_virtual_time");
}

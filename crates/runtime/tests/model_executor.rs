//! Whole-executor model checks: `Runtime::map*` explored end-to-end under
//! the deterministic scheduler — claim/steal accounting through real
//! worker loops, cancel fail-fast, and panic isolation with clean joins.

#![cfg(feature = "model")]

use qgp_check::{explore, Config};
use qgp_runtime::{CancelToken, Runtime};

/// Every index is executed exactly once and outputs land in index order,
/// across explored interleavings of two real workers (claim, steal,
/// install, abort polling — the full loop).
#[test]
fn map_executes_every_index_exactly_once() {
    let report = explore(&Config::seeded(24).from_env(), || {
        let rt = Runtime::new(2);
        let outcome = rt.map_with_grain(4, 1, || 0u32, |count, i| {
            *count += 1;
            i * 10
        });
        assert_eq!(outcome.outputs, vec![0, 10, 20, 30]);
        assert_eq!(
            outcome.states.iter().sum::<u32>(),
            4,
            "each index ran exactly once across workers"
        );
    });
    report.expect_ok("map_executes_every_index_exactly_once");
}

/// Cancellation fired from inside a task: workers stop claiming, the scope
/// joins cleanly, and executed outputs sit at their own index.
#[test]
fn cancel_fail_fast_joins_cleanly() {
    let report = explore(&Config::seeded(16).from_env(), || {
        let rt = Runtime::new(2);
        let token = CancelToken::new();
        let outcome = rt.map_with_cancel(6, &token, || (), |(), i| {
            if i == 0 {
                token.cancel();
            }
            i
        });
        for (i, slot) in outcome.outputs.iter().enumerate() {
            if let Some(v) = slot {
                assert_eq!(*v, i, "executed outputs sit at their own index");
            }
        }
        assert!(
            outcome.outputs.iter().flatten().count() >= 1,
            "at least the cancelling task ran"
        );
    });
    report.expect_ok("cancel_fail_fast_joins_cleanly");
}

/// A panicking task under the model: the abort token trips, siblings stop,
/// the scope joins, and the panic surfaces as a structured `TaskError` —
/// no interleaving may deadlock or leak the panic through the join.
#[test]
fn task_panic_isolates_and_joins_cleanly() {
    let report = explore(&Config::seeded(16).from_env(), || {
        let rt = Runtime::new(2);
        let err = rt
            .try_map_with_cancel(4, &CancelToken::new(), || (), |(), i| {
                if i == 2 {
                    panic!("boom at {i}");
                }
                i
            })
            .expect_err("task 2 panics");
        assert_eq!(err.index, Some(2));
        assert!(err.payload.contains("boom at 2"), "{err:?}");
        // The runtime stays reusable in the same schedule.
        let again = rt
            .try_map_with_cancel(3, &CancelToken::new(), || (), |(), i| i)
            .expect("retry succeeds");
        assert_eq!(again.outputs.iter().flatten().count(), 3);
    });
    report.expect_ok("task_panic_isolates_and_joins_cleanly");
}

//! Model checks for the collapsed work-stealing deque
//! (`qgp_runtime::RangeQueue`): the claim/steal accounting invariants and
//! the install-publication ordering contract.
//!
//! Run with `cargo test -p qgp-runtime --features model --test model_deque`.
//! The CI mutation leg additionally sets `RUSTFLAGS="--cfg qgp_mutate"`,
//! which weakens `install`'s `Release` store to `Relaxed`; the publication
//! test below then *requires* the checker to report a data race — the
//! checker's own liveness check.

#![cfg(feature = "model")]

use qgp_check::sync::Mutex;
use qgp_check::{explore, scope, Config, RaceCell};
use qgp_runtime::RangeQueue;

/// Owner claims from the bottom, a thief splits the top, both record what
/// they got: every index comes out exactly once (none lost, none twice).
/// Small enough to enumerate every interleaving.
#[test]
fn owner_and_thief_partition_the_range_exhaustively() {
    let config = Config {
        max_executions: 100_000,
        ..Config::exhaustive()
    };
    let report = explore(&config, || {
        let q = RangeQueue::new(0, 2);
        // Results come back through the join handles — thread-local
        // collection keeps the schedule tree small enough to enumerate.
        let (mine, stolen) = scope(|s| {
            let owner = s.spawn(|| {
                let mut v = Vec::new();
                while let Some((a, b)) = q.claim(1) {
                    v.extend(a..b);
                }
                v
            });
            let thief = s.spawn(|| {
                let mut v = Vec::new();
                if let Some((a, b)) = q.steal_half() {
                    v.extend(a..b);
                }
                v
            });
            (owner.join().expect("owner"), thief.join().expect("thief"))
        });
        let mut seen = mine;
        seen.extend(stolen);
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1], "every index exactly once");
    });
    report.expect_ok("owner_and_thief_partition_the_range_exhaustively");
    assert!(report.complete, "2-item case must be fully enumerated");
    assert!(
        report.executions > 1,
        "claim racing steal must branch; got {} executions",
        report.executions
    );
}

/// The same invariant at a larger size with two thieves, seeded: thieves
/// re-install stolen ranges into their own queues and drain them, which is
/// exactly the executor's steal path.
#[test]
fn two_thieves_and_owner_never_lose_or_duplicate_work() {
    let report = explore(&Config::seeded(48).from_env(), || {
        let victim = RangeQueue::new(0, 8);
        let got = Mutex::new(Vec::new());
        scope(|s| {
            let owner = s.spawn(|| {
                while let Some((a, b)) = victim.claim(2) {
                    got.lock().expect("got").extend(a..b);
                }
            });
            let thieves: Vec<_> = (0..2)
                .map(|t| {
                    let victim = &victim;
                    let got = &got;
                    s.spawn(move || {
                        // Each thief owns an initially empty queue, as in
                        // the executor.
                        let own = RangeQueue::new(0, 0);
                        if let Some((lo, hi)) = victim.steal_half() {
                            own.install(lo, hi);
                            while let Some((a, b)) = own.claim(1 + t as u32) {
                                got.lock().expect("got").extend(a..b);
                            }
                        }
                    })
                })
                .collect();
            owner.join().expect("owner");
            for t in thieves {
                t.join().expect("thief");
            }
        });
        let mut seen = got.lock().expect("got").clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>(), "every index exactly once");
    });
    report.expect_ok("two_thieves_and_owner_never_lose_or_duplicate_work");
}

/// A singleton range must be stealable whole: exactly one of owner/thief
/// gets the item, never both, never neither.
#[test]
fn singleton_range_goes_to_exactly_one_side() {
    let report = explore(&Config::exhaustive(), || {
        let q = RangeQueue::new(5, 6);
        let claims = Mutex::new(0u32);
        scope(|s| {
            let owner = s.spawn(|| {
                if let Some((a, b)) = q.claim(3) {
                    assert_eq!((a, b), (5, 6));
                    *claims.lock().expect("claims") += 1;
                }
            });
            let thief = s.spawn(|| {
                if let Some((a, b)) = q.steal_half() {
                    assert_eq!((a, b), (5, 6), "a leftover item is stolen whole");
                    *claims.lock().expect("claims") += 1;
                }
            });
            owner.join().expect("owner");
            thief.join().expect("thief");
        });
        assert_eq!(*claims.lock().expect("claims"), 1, "exactly one winner");
        assert_eq!(q.len(), 0);
    });
    report.expect_ok("singleton_range_goes_to_exactly_one_side");
    assert!(report.complete);
}

/// The ordering contract `install` exists for: task data written before the
/// range is published must be visible to whoever claims it.  With the real
/// `Release` store this passes every interleaving; under the CI mutation
/// leg (`--cfg qgp_mutate` weakens the store to `Relaxed`) the checker must
/// report the publication race — if it ever stops doing so, the checker
/// has rotted and this test fails the mutation job.
#[test]
fn install_publishes_task_data_written_before_it() {
    let report = explore(&Config::exhaustive(), || {
        let q = RangeQueue::new(0, 0);
        let payload = RaceCell::named("task-payload", 0u32);
        scope(|s| {
            let producer = s.spawn(|| {
                payload.write(7);
                q.install(0, 1);
            });
            let consumer = s.spawn(|| {
                if let Some((a, b)) = q.claim(1) {
                    assert_eq!((a, b), (0, 1));
                    assert_eq!(payload.read(), 7, "claimed range sees its data");
                }
            });
            producer.join().expect("producer");
            consumer.join().expect("consumer");
        });
    });
    #[cfg(not(qgp_mutate))]
    {
        report.expect_ok("install_publishes_task_data_written_before_it");
        assert!(report.complete);
    }
    #[cfg(qgp_mutate)]
    report.expect_race("install_publishes_task_data_written_before_it (mutated)");
}

//! # quantified-graph-patterns
//!
//! Facade crate re-exporting the whole QGP stack: graph substrate, quantified
//! pattern language and matching, parallel matching, association rules and
//! dataset generators.  See the individual crates for details.

pub use qgp_core as core;
pub use qgp_datasets as datasets;
pub use qgp_graph as graph;
pub use qgp_parallel as parallel;
pub use qgp_rules as rules;

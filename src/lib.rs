//! # quantified-graph-patterns
//!
//! Facade crate for the whole QGP stack: graph substrate, quantified
//! pattern language, the prepared-query engine, parallel matching,
//! association rules and dataset generators.  See the individual crates
//! for details.
//!
//! The root re-exports everything the common flow needs — build a graph
//! ([`GraphBuilder`]), express a quantified pattern ([`PatternBuilder`],
//! [`CountingQuantifier`]), and run it through the prepared-query engine
//! ([`Engine`], [`ExecOptions`]) — so the quickstart is a single `use`.
//!
//! ## Quickstart
//!
//! The core flow — the same as `cargo run --example quickstart`, on
//! pattern Q3 of the paper's running example:
//!
//! ```
//! use quantified_graph_patterns::{
//!     CountingQuantifier, Engine, ExecOptions, GraphBuilder, PatternBuilder,
//! };
//!
//! // A small social graph: users, follow edges, and who recommends (or
//! // pans) the "Redmi 2A" phone.
//! let mut g = GraphBuilder::new();
//! let ann = g.add_node("person");
//! let bob = g.add_node("person");
//! let cai = g.add_node("person");
//! let dee = g.add_node("person");
//! let fans = g.add_nodes("person", 4);
//! let phone = g.add_node("Redmi 2A");
//!
//! // ann follows two fans, both recommend the phone.
//! g.add_edge(ann, fans[0], "follow").unwrap();
//! g.add_edge(ann, fans[1], "follow").unwrap();
//! // bob follows three people; only one of them recommends (and none pans).
//! g.add_edge(bob, fans[2], "follow").unwrap();
//! g.add_edge(bob, ann, "follow").unwrap();
//! g.add_edge(bob, cai, "follow").unwrap();
//! // cai follows two fans and one person who gave a bad rating.
//! g.add_edge(cai, fans[2], "follow").unwrap();
//! g.add_edge(cai, fans[3], "follow").unwrap();
//! g.add_edge(cai, dee, "follow").unwrap();
//! for &f in &fans {
//!     g.add_edge(f, phone, "recom").unwrap();
//! }
//! g.add_edge(dee, phone, "bad_rating").unwrap();
//! let graph = g.build();
//!
//! // Q3: "people xo such that at least 2 of the people xo follows recommend
//! // the Redmi 2A, and nobody xo follows gave it a bad rating" — a numeric
//! // aggregate plus negation.
//! let mut b = PatternBuilder::new();
//! let xo = b.node_named("person", "xo");
//! let z1 = b.node_named("person", "z1");
//! let z2 = b.node_named("person", "z2");
//! let redmi = b.node("Redmi 2A");
//! b.quantified_edge(xo, z1, "follow", CountingQuantifier::at_least(2));
//! b.edge(z1, redmi, "recom");
//! b.negated_edge(xo, z2, "follow");
//! b.edge(z2, redmi, "bad_rating");
//! b.focus(xo);
//! let pattern = b.build().expect("pattern is well-formed");
//!
//! // Compile once; execute as often as needed (streaming the answers).
//! let engine = Engine::new(&graph);
//! let mut prepared = engine.prepare(&pattern).expect("pattern validates");
//! let answer = prepared.run(ExecOptions::sequential()).unwrap();
//!
//! // ann qualifies (2 recommenders, no bad rating among her followees);
//! // bob fails the numeric aggregate; cai fails the negation.
//! assert_eq!(answer.matches, vec![ann]);
//!
//! // The prepared query is reusable — e.g. stream just the first answer.
//! let first = prepared
//!     .execute(ExecOptions::sequential().limit(1))
//!     .unwrap()
//!     .next();
//! assert_eq!(first, Some(ann));
//!
//! // Or keep the answer live under edge updates: materialize a view and
//! // apply update batches to it.
//! use quantified_graph_patterns::EdgeOp;
//! let mut view = prepared.view();
//! assert_eq!(view.matches(), &[ann]);
//! // ann follows dee, who panned the phone — the negation now excludes ann.
//! let follow = graph.labels().edge_label("follow").unwrap();
//! let delta = view.apply(&[EdgeOp::insert(ann, dee, follow)]).unwrap();
//! assert_eq!(delta.removed, vec![ann]);
//! assert!(view.matches().is_empty());
//!
//! // To serve a graph that *keeps changing*, hand it to a `GraphStore`:
//! // the writer applies update batches and publishes immutable epoch
//! // snapshots; readers pin an epoch and are never blocked (or invalidated)
//! // by the writer racing ahead.
//! use quantified_graph_patterns::GraphStore;
//! let store = GraphStore::new(graph);
//! let pinned = store.snapshot();                                   // epoch 0
//! store.apply(&[EdgeOp::insert(ann, dee, follow)]).unwrap();       // epoch 1
//! assert_eq!(prepared.run_on(&pinned, ExecOptions::sequential()).unwrap().matches, vec![ann]);
//! let head = store.snapshot();
//! assert!(prepared.run_on(&head, ExecOptions::sequential()).unwrap().matches.is_empty());
//! ```

#![forbid(unsafe_code)]

pub use qgp_core as core;
pub use qgp_datasets as datasets;
pub use qgp_graph as graph;
pub use qgp_parallel as parallel;
pub use qgp_rules as rules;
pub use qgp_runtime as runtime;

// The one execution surface, flattened to the root so the quickstart needs
// a single `use` line.
pub use qgp_core::engine::{
    BudgetPolicy, BudgetStop, CacheStats, CancelToken, CountAnswer, CountMode, Engine, ExecBudget,
    ExecMode, ExecOptions, FocusCount, Matches, MatchView, ParallelTelemetry, Parallelism,
    PreparedQuery, QueryId, QueryRegistry, ServeOutcome, ServeRequest, TaskError, ViewDelta,
    ViewError,
};
pub use qgp_core::matching::{MatchConfig, MatchStats, QueryAnswer};
pub use qgp_core::pattern::{CountingQuantifier, Pattern, PatternBuilder};
pub use qgp_graph::{
    EdgeOp, Graph, GraphBuilder, GraphError, GraphSnapshot, GraphStore, LabelId, LabelSet, NodeId,
    UpdateReport,
};
pub use qgp_runtime::Runtime;

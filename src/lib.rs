//! # quantified-graph-patterns
//!
//! Facade crate re-exporting the whole QGP stack: graph substrate, quantified
//! pattern language and matching, parallel matching, association rules and
//! dataset generators.  See the individual crates for details.
//!
//! ## Quickstart
//!
//! The core flow — build a graph, express a quantified pattern with the
//! builder DSL, run quantified matching — in one page (the same flow as
//! `cargo run --example quickstart`, on pattern Q3 of the paper's running
//! example):
//!
//! ```
//! use quantified_graph_patterns::core::matching::quantified_match;
//! use quantified_graph_patterns::core::pattern::{CountingQuantifier, PatternBuilder};
//! use quantified_graph_patterns::graph::GraphBuilder;
//!
//! // A small social graph: users, follow edges, and who recommends (or
//! // pans) the "Redmi 2A" phone.
//! let mut g = GraphBuilder::new();
//! let ann = g.add_node("person");
//! let bob = g.add_node("person");
//! let cai = g.add_node("person");
//! let dee = g.add_node("person");
//! let fans = g.add_nodes("person", 4);
//! let phone = g.add_node("Redmi 2A");
//!
//! // ann follows two fans, both recommend the phone.
//! g.add_edge(ann, fans[0], "follow").unwrap();
//! g.add_edge(ann, fans[1], "follow").unwrap();
//! // bob follows three people; only one of them recommends (and none pans).
//! g.add_edge(bob, fans[2], "follow").unwrap();
//! g.add_edge(bob, ann, "follow").unwrap();
//! g.add_edge(bob, cai, "follow").unwrap();
//! // cai follows two fans and one person who gave a bad rating.
//! g.add_edge(cai, fans[2], "follow").unwrap();
//! g.add_edge(cai, fans[3], "follow").unwrap();
//! g.add_edge(cai, dee, "follow").unwrap();
//! for &f in &fans {
//!     g.add_edge(f, phone, "recom").unwrap();
//! }
//! g.add_edge(dee, phone, "bad_rating").unwrap();
//! let graph = g.build();
//!
//! // Q3: "people xo such that at least 2 of the people xo follows recommend
//! // the Redmi 2A, and nobody xo follows gave it a bad rating" — a numeric
//! // aggregate plus negation.
//! let mut b = PatternBuilder::new();
//! let xo = b.node_named("person", "xo");
//! let z1 = b.node_named("person", "z1");
//! let z2 = b.node_named("person", "z2");
//! let redmi = b.node("Redmi 2A");
//! b.quantified_edge(xo, z1, "follow", CountingQuantifier::at_least(2));
//! b.edge(z1, redmi, "recom");
//! b.negated_edge(xo, z2, "follow");
//! b.edge(z2, redmi, "bad_rating");
//! b.focus(xo);
//! let pattern = b.build().expect("pattern is well-formed");
//!
//! let answer = quantified_match(&graph, &pattern).expect("matching succeeds");
//!
//! // ann qualifies (2 recommenders, no bad rating among her followees);
//! // bob fails the numeric aggregate; cai fails the negation.
//! assert_eq!(answer.matches, vec![ann]);
//! ```

pub use qgp_core as core;
pub use qgp_datasets as datasets;
pub use qgp_graph as graph;
pub use qgp_parallel as parallel;
pub use qgp_rules as rules;
pub use qgp_runtime as runtime;

//! Cross-crate integration tests: dataset generators → core matching →
//! parallel matching → association rules, exercised together the way the
//! examples and the experiment harness use them.

use quantified_graph_patterns::core::pattern::{library, CountingQuantifier, PatternBuilder};
use quantified_graph_patterns::datasets::{
    generate_pattern, pokec_like, yago_like, KnowledgeConfig, PatternGenConfig, PatternSize,
    SocialConfig,
};
use quantified_graph_patterns::parallel::{dpar, PartitionConfig};
use quantified_graph_patterns::rules::{evaluate_rule, mine_qgars, MiningConfig, Qgar};
use quantified_graph_patterns::{
    Engine, ExecOptions, Graph, MatchConfig, Pattern, QueryAnswer,
};

/// One sequential engine execution with an explicit config.
fn engine_match(graph: &Graph, pattern: &Pattern, config: MatchConfig) -> QueryAnswer {
    Engine::new(graph)
        .prepare(pattern)
        .expect("pattern validates")
        .run(ExecOptions::sequential().with_config(config))
        .expect("sequential runs succeed")
}

#[test]
fn all_sequential_algorithms_agree_on_generated_social_graphs() {
    let graph = pokec_like(&SocialConfig::with_persons(800));
    for pattern in [
        library::q1_music_club(),
        library::q2_redmi_universal(),
        library::q3_redmi_negation(2),
    ] {
        let reference = engine_match(&graph, &pattern, MatchConfig::enumerate()).matches;
        for config in [
            MatchConfig::qmatch(),
            MatchConfig::qmatch_n(),
            MatchConfig::qmatch_with_simulation(),
        ] {
            let got = engine_match(&graph, &pattern, config);
            assert_eq!(got.matches, reference, "{config:?} on {pattern}");
        }
    }
}

#[test]
fn parallel_matching_agrees_with_sequential_on_generated_graphs() {
    let graph = pokec_like(&SocialConfig::with_persons(700));
    let pattern = library::q3_redmi_negation(2);
    let engine = Engine::new(&graph);
    let mut prepared = engine.prepare(&pattern).unwrap();
    let sequential = prepared.run(ExecOptions::sequential()).unwrap();
    for n in [2usize, 3, 5] {
        let partition = dpar(&graph, &PartitionConfig::new(n, prepared.radius()));
        let parallel = prepared
            .run(ExecOptions::partitioned_threads(
                partition.fragments(),
                partition.d(),
                2,
            ))
            .unwrap();
        assert_eq!(parallel.matches, sequential.matches, "n = {n}");
    }
}

#[test]
fn knowledge_graph_pipeline_q4() {
    let graph = yago_like(&KnowledgeConfig::with_persons(900));
    let q4 = library::q4_uk_professors(2);
    let sequential = engine_match(&graph, &q4, MatchConfig::qmatch());
    // Raising p shrinks the answer.
    let stricter = engine_match(&graph, &library::q4_uk_professors(3), MatchConfig::qmatch());
    assert!(stricter.len() <= sequential.len());
    for v in &stricter.matches {
        assert!(sequential.contains(*v));
    }
    // Parallel evaluation agrees.
    let partition = dpar(&graph, &PartitionConfig::new(3, q4.radius().max(2)));
    let parallel = Engine::new(&graph)
        .prepare(&q4)
        .unwrap()
        .run(ExecOptions::partitioned_threads(
            partition.fragments(),
            partition.d(),
            2,
        ))
        .unwrap();
    assert_eq!(parallel.matches, sequential.matches);
}

#[test]
fn generated_workload_patterns_agree_across_algorithms() {
    let graph = pokec_like(&SocialConfig::with_persons(600));
    for seed in 0..4u64 {
        let config = PatternGenConfig {
            focus_label: Some("person".to_owned()),
            seed,
            ..PatternGenConfig::with_size(PatternSize::new(5, 7, 30.0, 1))
        };
        let Some(pattern) = generate_pattern(&graph, &config) else {
            continue;
        };
        let a = engine_match(&graph, &pattern, MatchConfig::qmatch());
        let b = engine_match(&graph, &pattern, MatchConfig::enumerate());
        assert_eq!(a.matches, b.matches, "seed {seed}: {pattern}");
    }
}

#[test]
fn rule_evaluation_and_mining_work_end_to_end() {
    let graph = pokec_like(&SocialConfig::with_persons(800));

    // Hand-written R1-style rule.
    let mut b = PatternBuilder::new();
    let xo = b.node("person");
    let z = b.node("person");
    let y = b.node("album");
    b.quantified_edge(xo, z, "follow", CountingQuantifier::at_least_percent(80.0));
    b.edge(z, y, "like");
    b.focus(xo);
    let antecedent = b.build().unwrap();
    let mut b = PatternBuilder::new();
    let xo = b.node("person");
    let y = b.node("album");
    b.edge(xo, y, "buy");
    b.focus(xo);
    let consequent = b.build().unwrap();
    let rule = Qgar::new("R1", antecedent, consequent).unwrap();

    let eval = evaluate_rule(&graph, &rule, &MatchConfig::qmatch()).unwrap();
    assert!(eval.support <= eval.antecedent_matches.len());
    assert!(eval.confidence >= 0.0 && eval.confidence <= 1.0);

    // Mining finds rules whose reported support/confidence are consistent
    // with re-evaluating the rule from scratch.
    let mined = mine_qgars(
        &graph,
        &MiningConfig {
            min_support: 10,
            max_rules: 3,
            ..MiningConfig::default()
        },
    )
    .unwrap();
    for rule in mined {
        let again = evaluate_rule(&graph, &rule.rule, &MatchConfig::qmatch()).unwrap();
        assert_eq!(again.support, rule.evaluation.support);
        assert!((again.confidence - rule.evaluation.confidence).abs() < 1e-9);
    }
}

#[test]
fn partition_statistics_are_consistent_with_fragments() {
    let graph = pokec_like(&SocialConfig::with_persons(500));
    let partition = dpar(&graph, &PartitionConfig::new(4, 2));
    let stats = partition.stats();
    assert_eq!(stats.fragment_sizes.len(), partition.len());
    assert_eq!(stats.total_nodes, graph.node_count());
    let covered: usize = partition
        .fragments()
        .iter()
        .map(|f| f.covered_count())
        .sum();
    assert_eq!(covered, graph.node_count());
    assert!(stats.skew > 0.0 && stats.skew <= 1.0);
}

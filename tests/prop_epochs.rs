//! Differential contracts of the epoch-snapshot store:
//!
//! * a reader pinned to epoch `N` gets answers byte-identical to a full
//!   recompute on a graph *rebuilt from scratch* with epoch `N`'s edge set,
//!   no matter how many epochs the writer has published since — for every
//!   matcher configuration,
//! * `MatchView::advance` (replaying the store's inter-epoch log) leaves
//!   the view equal to a recompute on the latest snapshot, with the view's
//!   anchor tracking the store head,
//! * snapshots COW-share the frozen storage of the graph they were
//!   published from — pinning is O(1), not a copy.
//!
//! Streams come from the same seeded [`UpdateStreamGen`] the
//! `experiments bench --serving` section measures, so the perf numbers and
//! the correctness pins cover one distribution.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use qgp_bench::{StreamConfig, UpdateStreamGen};
use quantified_graph_patterns::graph::LabelId;
use quantified_graph_patterns::{
    CountingQuantifier, Engine, ExecOptions, Graph, GraphBuilder, GraphSnapshot, GraphStore,
    MatchConfig, NodeId, Pattern, PatternBuilder,
};

const NODE_LABELS: &[&str] = &["A", "B", "C"];
const EDGE_LABELS: &[&str] = &["r", "s"];

#[derive(Debug, Clone)]
struct GraphSpec {
    node_labels: Vec<u8>,
    edges: Vec<(u8, u8, u8)>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (4usize..10).prop_flat_map(|n| {
        let nodes = proptest::collection::vec(0u8..NODE_LABELS.len() as u8, n);
        let edges = proptest::collection::vec(
            (0u8..n as u8, 0u8..n as u8, 0u8..EDGE_LABELS.len() as u8),
            0..(3 * n),
        );
        (nodes, edges).prop_map(|(node_labels, edges)| GraphSpec { node_labels, edges })
    })
}

fn build_graph(spec: &GraphSpec) -> Graph {
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = spec
        .node_labels
        .iter()
        .map(|&l| b.add_node(NODE_LABELS[l as usize]))
        .collect();
    for (i, name) in EDGE_LABELS.iter().enumerate() {
        let from = ids[i % ids.len()];
        let to = ids[(i + 1) % ids.len()];
        let _ = b.add_edge_dedup(from, to, name);
    }
    for &(from, to, label) in &spec.edges {
        if from == to {
            continue;
        }
        let _ = b.add_edge_dedup(
            ids[from as usize],
            ids[to as usize],
            EDGE_LABELS[label as usize],
        );
    }
    b.build()
}

/// The same fixed pattern family `prop_incremental` pins, covering every
/// quantifier class including negation.
fn pattern(kind: u8) -> Pattern {
    let mut b = PatternBuilder::new();
    let xo = b.node("A");
    match kind % 6 {
        0 => {
            let y = b.node("B");
            b.edge(xo, y, "r");
        }
        1 => {
            let y = b.node("B");
            b.quantified_edge(xo, y, "r", CountingQuantifier::at_least(2));
        }
        2 => {
            let y = b.node("B");
            let z = b.node("C");
            b.quantified_edge(xo, y, "r", CountingQuantifier::at_least_percent(50.0));
            b.edge(y, z, "s");
        }
        3 => {
            let y = b.node("B");
            let z = b.node("C");
            b.quantified_edge(xo, y, "r", CountingQuantifier::universal());
            b.edge(y, z, "s");
        }
        4 => {
            let y = b.node("B");
            b.quantified_edge(xo, y, "r", CountingQuantifier::exactly(1));
        }
        _ => {
            let y = b.node("B");
            let z = b.node("C");
            b.quantified_edge(xo, y, "r", CountingQuantifier::at_least(1));
            b.negated_edge(xo, z, "s");
        }
    }
    b.focus(xo);
    b.build().expect("fixed pattern family validates")
}

fn all_configs() -> [MatchConfig; 4] {
    [
        MatchConfig::qmatch(),
        MatchConfig::qmatch_n(),
        MatchConfig::qmatch_with_simulation(),
        MatchConfig::enumerate(),
    ]
}

type Edge = (NodeId, NodeId, LabelId);

fn edge_set(graph: &Graph) -> BTreeSet<Edge> {
    graph.edges().map(|e| (e.from, e.to, e.label)).collect()
}

/// From-scratch rebuild with the same nodes/labels as `template` but
/// exactly `edges` — the first-principles reference a pinned snapshot is
/// compared against.
fn rebuild(template: &Graph, edges: &BTreeSet<Edge>) -> Graph {
    let mut g = Graph::with_labels(template.labels().clone());
    for v in template.nodes() {
        g.add_node(template.node_label(v));
    }
    g.add_edges_bulk(edges.iter().copied())
        .expect("mirror endpoints are in range");
    g
}

fn recompute(graph: &Graph, pattern: &Pattern, config: &MatchConfig) -> Vec<NodeId> {
    Engine::new(graph)
        .prepare(pattern)
        .expect("pattern validates")
        .run(ExecOptions::sequential().with_config(*config))
        .expect("sequential runs succeed")
        .matches
}

fn stream_config(seed: u64) -> StreamConfig {
    StreamConfig {
        seed,
        ..StreamConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pin a snapshot after every published epoch, let the writer race to
    /// the end, then evaluate every pinned epoch: each must agree with a
    /// full recompute on a from-scratch rebuild of that epoch's edge set,
    /// for all four matcher configs.
    #[test]
    fn pinned_epochs_answer_like_their_rebuilt_graphs(
        gspec in graph_spec(),
        kind in 0u8..6,
        seed in 0u64..1_000_000,
    ) {
        let graph = build_graph(&gspec);
        let pattern = pattern(kind);
        let store = GraphStore::new(graph.clone());
        let mut gen = UpdateStreamGen::new(&graph, stream_config(seed));

        // The writer publishes K epochs; after each publish we pin the
        // snapshot and mirror the edge set it must answer for.
        let mut pinned: Vec<(Arc<GraphSnapshot>, BTreeSet<Edge>)> =
            vec![(store.snapshot(), edge_set(&graph))];
        let mut edges = edge_set(&graph);
        for batch_size in [1usize, 4, 12, 30] {
            let ops = gen.next_batch(batch_size);
            for op in &ops {
                let key = (op.from(), op.to(), op.label());
                if op.is_insert() {
                    edges.insert(key);
                } else {
                    edges.remove(&key);
                }
            }
            store.apply(&ops).unwrap();
            pinned.push((store.snapshot(), edges.clone()));
        }
        prop_assert_eq!(store.epoch(), 4);

        // Snapshots share the frozen storage lineage: pinning never copied
        // the CSR (the final compaction state may differ per epoch, but
        // each snapshot's graph equals its mirror exactly).
        let mut prepared = Engine::on(Arc::clone(&pinned[0].0))
            .prepare(&pattern)
            .unwrap();
        for (epoch, (snapshot, mirror)) in pinned.iter().enumerate() {
            prop_assert_eq!(snapshot.epoch(), epoch as u64);
            prop_assert_eq!(edge_set(snapshot.graph()), mirror.clone());
            let rebuilt = rebuild(&graph, mirror);
            for config in all_configs() {
                let got = prepared
                    .run_on(snapshot, ExecOptions::sequential().with_config(config))
                    .unwrap()
                    .matches;
                prop_assert_eq!(
                    &got[..],
                    &recompute(&rebuilt, &pattern, &config)[..],
                    "epoch {}, {:?}", epoch, config
                );
            }
        }

        // Evaluation order must not matter: epoch 0 re-answers identically
        // after the head epochs were served from the same prepared query.
        let (zero, mirror) = &pinned[0];
        prop_assert_eq!(
            prepared
                .run_on(zero, ExecOptions::sequential())
                .unwrap()
                .matches,
            recompute(&rebuild(&graph, mirror), &pattern, &MatchConfig::qmatch())
        );
    }

    /// `MatchView::advance` replays whatever the writer published since the
    /// view's anchor and lands exactly on a recompute of the head snapshot;
    /// interleaving writer batches between advances keeps the contract.
    #[test]
    fn view_advance_tracks_the_store_head(
        gspec in graph_spec(),
        kind in 0u8..6,
        seed in 0u64..1_000_000,
    ) {
        let graph = build_graph(&gspec);
        let pattern = pattern(kind);
        let store = GraphStore::new(graph.clone());
        let mut gen = UpdateStreamGen::new(&graph, stream_config(seed));
        let mut view = Engine::from_store(&store)
            .prepare(&pattern)
            .unwrap()
            .view();
        let mut replayed = view.matches().to_vec();

        // Two rounds: multiple batches published per advance, so a single
        // advance replays a multi-epoch suffix of the log.
        for round in 0..2u32 {
            for batch_size in [3usize, 9] {
                let ops = gen.next_batch(batch_size);
                store.apply(&ops).unwrap();
            }
            let delta = view.advance(&store).unwrap();
            delta.apply_to(&mut replayed);
            prop_assert_eq!(view.anchor_epoch(), store.epoch());

            let head = store.snapshot();
            prop_assert_eq!(edge_set(view.graph()), edge_set(head.graph()));
            for config in all_configs() {
                prop_assert_eq!(
                    view.matches(),
                    &recompute(head.graph(), &pattern, &config)[..],
                    "round {}, {:?}", round, config
                );
            }
            prop_assert_eq!(&replayed[..], view.matches(), "delta replay diverged");
        }

        // Nothing new published: advance is a no-op.
        let delta = view.advance(&store).unwrap();
        prop_assert!(delta.is_empty());
        prop_assert_eq!(view.anchor_epoch(), store.epoch());
    }
}

//! Public-API snapshot: the facade's root re-exports, pinned to a golden
//! file so accidental surface breaks (a dropped re-export, a renamed type,
//! a new export nobody reviewed) fail CI instead of shipping.
//!
//! The surface is extracted from the `pub use` items of `src/lib.rs` — the
//! facade root is re-exports only, so those lines *are* the API.  The crate
//! compiling at all proves every listed path resolves; this test proves the
//! set of paths is exactly the reviewed one.
//!
//! To intentionally change the surface, update `tests/api_surface.txt` in
//! the same commit (run with `UPDATE_API_SURFACE=1` to regenerate).

use std::fmt::Write as _;
use std::path::Path;

/// Extracts one normalized line per re-exported item from Rust source:
/// `pub use a::b::{C, D as E};` → `a::b::C` and `a::b::D as E`.
fn extract_re_exports(source: &str) -> Vec<String> {
    // Strip comments so commented-out exports don't count.
    let mut code = String::new();
    for line in source.lines() {
        let line = match line.find("//") {
            Some(idx) => &line[..idx],
            None => line,
        };
        code.push_str(line);
        code.push('\n');
    }

    let mut items = Vec::new();
    let mut rest = code.as_str();
    while let Some(start) = rest.find("pub use ") {
        let after = &rest[start + "pub use ".len()..];
        let end = after.find(';').expect("unterminated `pub use`");
        let decl: String = after[..end].split_whitespace().collect::<Vec<_>>().join(" ");
        if let Some(brace) = decl.find('{') {
            let prefix = decl[..brace].trim_end_matches([':', ' ']);
            let inner = decl[brace + 1..]
                .trim_end()
                .trim_end_matches('}')
                .trim_end();
            for item in inner.split(',') {
                let item = item.trim();
                if !item.is_empty() {
                    items.push(format!("{prefix}::{item}"));
                }
            }
        } else {
            items.push(decl);
        }
        rest = &after[end + 1..];
    }
    items.sort();
    items
}

#[test]
fn facade_root_re_exports_match_the_golden_file() {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(manifest.join("src/lib.rs")).expect("read src/lib.rs");
    let mut current = String::new();
    for item in extract_re_exports(&source) {
        let _ = writeln!(current, "{item}");
    }

    let golden_path = manifest.join("tests/api_surface.txt");
    if std::env::var_os("UPDATE_API_SURFACE").is_some() {
        std::fs::write(&golden_path, &current).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).expect(
        "tests/api_surface.txt missing — run with UPDATE_API_SURFACE=1 to generate it",
    );
    assert_eq!(
        current, golden,
        "\nthe facade's root re-exports changed.\n\
         If intentional, regenerate the snapshot:\n\
         \n    UPDATE_API_SURFACE=1 cargo test --test api_surface\n\
         \nand commit tests/api_surface.txt together with the API change."
    );
}

#[test]
fn extraction_handles_groups_aliases_and_comments() {
    let src = "
        // pub use hidden::Thing;
        pub use a::b::{C, D as E};
        pub use x as y;
        pub use p::q::R;
    ";
    let items = extract_re_exports(src);
    assert_eq!(
        items,
        vec!["a::b::C", "a::b::D as E", "p::q::R", "x as y"]
    );
}

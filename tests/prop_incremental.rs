//! Differential contracts of the live match view:
//!
//! * after every update batch, `MatchView::apply` leaves the view equal to
//!   a full `PreparedQuery::execute` on a graph *rebuilt from scratch* with
//!   the post-batch edge set — for every matcher configuration, and for
//!   repairs run at 1 and 4 executor threads,
//! * the accumulated `ViewDelta`s replay the initial match set to the final
//!   one,
//! * metamorphic inverse: streaming a batch sequence and then the exact
//!   inverse (effective ops only, reversed) restores both the original
//!   match set and the original adjacency,
//! * a single-edge update on the pokec-like generator's graph patches two
//!   adjacency rows instead of rebuilding the CSR (counter-pinned).
//!
//! Streams come from the same seeded [`UpdateStreamGen`] the
//! `experiments bench --incremental` section measures, so the perf numbers
//! and the correctness pins cover one distribution.

use std::collections::BTreeSet;

use proptest::prelude::*;

use qgp_bench::{StreamConfig, UpdateStreamGen};
use quantified_graph_patterns::graph::LabelId;
use quantified_graph_patterns::{
    CountingQuantifier, EdgeOp, Engine, ExecOptions, Graph, GraphBuilder, MatchConfig, NodeId,
    Pattern, PatternBuilder, Runtime,
};

const NODE_LABELS: &[&str] = &["A", "B", "C"];
const EDGE_LABELS: &[&str] = &["r", "s"];

#[derive(Debug, Clone)]
struct GraphSpec {
    node_labels: Vec<u8>,
    edges: Vec<(u8, u8, u8)>,
}

fn graph_spec() -> impl Strategy<Value = GraphSpec> {
    (4usize..10).prop_flat_map(|n| {
        let nodes = proptest::collection::vec(0u8..NODE_LABELS.len() as u8, n);
        let edges = proptest::collection::vec(
            (0u8..n as u8, 0u8..n as u8, 0u8..EDGE_LABELS.len() as u8),
            0..(3 * n),
        );
        (nodes, edges).prop_map(|(node_labels, edges)| GraphSpec { node_labels, edges })
    })
}

fn build_graph(spec: &GraphSpec) -> Graph {
    let mut b = GraphBuilder::new();
    let ids: Vec<NodeId> = spec
        .node_labels
        .iter()
        .map(|&l| b.add_node(NODE_LABELS[l as usize]))
        .collect();
    // Intern every edge label even when the random edge list misses one, so
    // the stream generator always has the full vocabulary to draw from.
    for (i, name) in EDGE_LABELS.iter().enumerate() {
        let from = ids[i % ids.len()];
        let to = ids[(i + 1) % ids.len()];
        let _ = b.add_edge_dedup(from, to, name);
    }
    for &(from, to, label) in &spec.edges {
        if from == to {
            continue;
        }
        let _ = b.add_edge_dedup(
            ids[from as usize],
            ids[to as usize],
            EDGE_LABELS[label as usize],
        );
    }
    b.build()
}

/// A fixed family of patterns covering every quantifier class, including
/// negation.
fn pattern(kind: u8) -> Pattern {
    let mut b = PatternBuilder::new();
    let xo = b.node("A");
    match kind % 6 {
        0 => {
            let y = b.node("B");
            b.edge(xo, y, "r");
        }
        1 => {
            let y = b.node("B");
            b.quantified_edge(xo, y, "r", CountingQuantifier::at_least(2));
        }
        2 => {
            let y = b.node("B");
            let z = b.node("C");
            b.quantified_edge(xo, y, "r", CountingQuantifier::at_least_percent(50.0));
            b.edge(y, z, "s");
        }
        3 => {
            let y = b.node("B");
            let z = b.node("C");
            b.quantified_edge(xo, y, "r", CountingQuantifier::universal());
            b.edge(y, z, "s");
        }
        4 => {
            let y = b.node("B");
            b.quantified_edge(xo, y, "r", CountingQuantifier::exactly(1));
        }
        _ => {
            let y = b.node("B");
            let z = b.node("C");
            b.quantified_edge(xo, y, "r", CountingQuantifier::at_least(1));
            b.negated_edge(xo, z, "s");
        }
    }
    b.focus(xo);
    b.build().expect("fixed pattern family validates")
}

fn all_configs() -> [MatchConfig; 4] {
    [
        MatchConfig::qmatch(),
        MatchConfig::qmatch_n(),
        MatchConfig::qmatch_with_simulation(),
        MatchConfig::enumerate(),
    ]
}

type Edge = (NodeId, NodeId, LabelId);

fn edge_set(graph: &Graph) -> BTreeSet<Edge> {
    graph.edges().map(|e| (e.from, e.to, e.label)).collect()
}

/// Rebuilds a graph from scratch with the same nodes/labels as `template`
/// but exactly `edges` — the from-first-principles reference an overlay
/// graph is compared against.
fn rebuild(template: &Graph, edges: &BTreeSet<Edge>) -> Graph {
    let mut g = Graph::with_labels(template.labels().clone());
    for v in template.nodes() {
        g.add_node(template.node_label(v));
    }
    g.add_edges_bulk(edges.iter().copied())
        .expect("mirror endpoints are in range");
    g
}

fn recompute(graph: &Graph, pattern: &Pattern, config: &MatchConfig) -> Vec<NodeId> {
    Engine::new(graph)
        .prepare(pattern)
        .expect("pattern validates")
        .run(ExecOptions::sequential().with_config(*config))
        .expect("sequential runs succeed")
        .matches
}

fn stream_config(seed: u64) -> StreamConfig {
    StreamConfig {
        seed,
        ..StreamConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The differential pin: after every batch the view equals a full
    /// recompute on a from-scratch rebuild of the post-batch edge set, for
    /// all four matcher configs; sequential and 4-thread repairs agree; the
    /// accumulated deltas replay to the view's match set.
    #[test]
    fn view_apply_tracks_recompute_on_the_rebuilt_graph(
        gspec in graph_spec(),
        kind in 0u8..6,
        seed in 0u64..1_000_000,
    ) {
        let graph = build_graph(&gspec);
        let pattern = pattern(kind);
        let engine = Engine::new(&graph);
        let prepared = engine.prepare(&pattern).unwrap();
        let mut view_seq = prepared.view();
        let mut view_par = prepared.view();
        let rt1 = Runtime::new(1);
        let rt4 = Runtime::new(4);
        let mut gen = UpdateStreamGen::new(&graph, stream_config(seed));
        let mut edges = edge_set(&graph);
        let mut replayed = view_seq.matches().to_vec();
        prop_assert_eq!(
            &replayed[..],
            &recompute(&graph, &pattern, &MatchConfig::qmatch())[..]
        );

        for batch_size in [1usize, 4, 12, 30] {
            let ops = gen.next_batch(batch_size);
            for op in &ops {
                let key = (op.from(), op.to(), op.label());
                if op.is_insert() {
                    edges.insert(key);
                } else {
                    edges.remove(&key);
                }
            }
            let d_seq = view_seq.apply_with(&ops, &rt1).unwrap();
            let d_par = view_par.apply_with(&ops, &rt4).unwrap();
            prop_assert_eq!(&d_seq, &d_par, "thread counts disagree");
            d_seq.apply_to(&mut replayed);

            let rebuilt = rebuild(&graph, &edges);
            prop_assert_eq!(edge_set(&rebuilt), edge_set(view_seq.graph()));
            for config in all_configs() {
                prop_assert_eq!(
                    view_seq.matches(),
                    &recompute(&rebuilt, &pattern, &config)[..],
                    "batch of {}, {:?}", batch_size, config
                );
            }
            prop_assert_eq!(&replayed[..], view_seq.matches(), "delta replay diverged");
        }
    }

    /// Metamorphic inverse: stream a few batches, then apply the exact
    /// inverse (effective ops only, in reverse order) — the original match
    /// set and the original adjacency both come back.
    #[test]
    fn inverse_stream_restores_matches_and_adjacency(
        gspec in graph_spec(),
        kind in 0u8..6,
        seed in 0u64..1_000_000,
    ) {
        let graph = build_graph(&gspec);
        let pattern = pattern(kind);
        let engine = Engine::new(&graph);
        let prepared = engine.prepare(&pattern).unwrap();
        let mut view = prepared.view();
        let original_matches = view.matches().to_vec();
        let original_edges = edge_set(&graph);

        // Track which ops actually changed the edge set: a counted no-op
        // (duplicate insert, delete-of-absent) has no inverse to apply.
        let mut live = original_edges.clone();
        let mut effective: Vec<EdgeOp> = Vec::new();
        let mut gen = UpdateStreamGen::new(&graph, stream_config(seed));
        for batch_size in [5usize, 17] {
            let ops = gen.next_batch(batch_size);
            for op in &ops {
                let key = (op.from(), op.to(), op.label());
                let changed = if op.is_insert() {
                    live.insert(key)
                } else {
                    live.remove(&key)
                };
                if changed {
                    effective.push(*op);
                }
            }
            view.apply(&ops).unwrap();
        }
        prop_assert_eq!(edge_set(view.graph()), live.clone());

        let inverse: Vec<EdgeOp> = effective.iter().rev().map(EdgeOp::inverse).collect();
        let delta = view.apply(&inverse).unwrap();
        prop_assert_eq!(delta.report.noop_inserts, 0);
        prop_assert_eq!(delta.report.noop_deletes, 0);
        prop_assert_eq!(view.matches(), &original_matches[..]);
        prop_assert_eq!(edge_set(view.graph()), original_edges);
        prop_assert_eq!(view.graph().edge_count(), graph.edge_count());
    }
}

/// A single-edge update on the pokec-like generator's graph must patch two
/// adjacency rows (the out-row of the source and the in-row of the target)
/// through the delta overlay instead of rebuilding the full CSR — the
/// regression the overlay exists to prevent.  Counter-based on purpose: the
/// counters are scale-invariant, so the graph runs at a debug-test-friendly
/// fraction of the 400k-person benchmark scale without weakening the
/// assertion.
#[test]
fn pokec_like_single_edge_update_patches_rows_without_rebuild() {
    use quantified_graph_patterns::datasets::{pokec_like, SocialConfig};

    let mut graph = pokec_like(&SocialConfig::with_persons(20_000));
    let follow = graph
        .labels()
        .edge_label("follow")
        .expect("pokec-like interns follow");
    let (from, to) = graph
        .nodes()
        .zip(graph.nodes().skip(1))
        .find(|&(f, t)| !graph.has_edge(f, t, follow))
        .expect("some follow edge is absent");

    let before = *graph.update_stats();
    let report = graph
        .apply_edge_ops(&[EdgeOp::insert(from, to, follow)])
        .unwrap();
    let after = *graph.update_stats();

    assert_eq!(report.inserted, 1);
    assert_eq!(report.nodes_patched, 2, "one out-row and one in-row");
    assert!(!report.compacted);
    assert_eq!(
        after.full_rebuilds, before.full_rebuilds,
        "a single-edge update must not rebuild the CSR"
    );
    assert_eq!(after.compactions, before.compactions);
    assert_eq!(after.nodes_patched, before.nodes_patched + 2);
    assert!(graph.has_edge(from, to, follow));
}

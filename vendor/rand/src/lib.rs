//! Offline stand-in for the `rand 0.8` API surface this workspace uses
//! (see `vendor/README.md`): `rngs::StdRng`, `SeedableRng::seed_from_u64`,
//! and `Rng::{gen_range, gen_bool}`.
//!
//! The generator is xoshiro256\*\* seeded through SplitMix64 — the standard
//! construction recommended by its authors. It is deterministic per seed,
//! which is all the dataset generators rely on; the streams differ from the
//! real `StdRng` (ChaCha12), so generated graphs are *statistically*
//! equivalent but not bit-identical to ones produced with the real crate.
//!
//! Not cryptographically secure — only used for synthetic data generation.

use std::ops::{Range, RangeInclusive};

/// Core random number source: 64 uniformly random bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// An RNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a deterministic RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling-convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformSample,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        // 53 random bits → uniform f64 in [0, 1), the same construction the
        // real rand crate uses for its standard float distribution.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

impl<T: RngCore> Rng for T {}

/// Commonly used pre-built generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator standing in for `rand::rngs::StdRng`.
    ///
    /// xoshiro256\*\* with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of state,
            // as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from a bounded range.
pub trait UniformSample: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`. `high` must be `> low`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`. `high` must be `≥ low`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($ty:ty),*) => {$(
        impl UniformSample for $ty {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low < high);
                let span = (high as u128).wrapping_sub(low as u128);
                // Multiply-shift bounded sampling (Lemire); the tiny bias of
                // not rejection-sampling is irrelevant for data generation.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                low.wrapping_add((wide >> 64) as $ty)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                // Wrapping u128 subtraction yields the correct span for
                // signed types too; + 1 never overflows because the widest
                // integer here is 64-bit, so span + 1 ≤ 2^64 < 2^128.
                let span = (high as u128).wrapping_sub(low as u128) + 1;
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                low.wrapping_add((wide >> 64) as $ty)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        debug_assert!(low < high);
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        // Over floats the inclusive/exclusive distinction is measure-zero.
        if low == high {
            return low;
        }
        Self::sample_half_open(rng, low, high)
    }
}

impl UniformSample for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        debug_assert!(low < high);
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        low + unit * (high - low)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        if low == high {
            return low;
        }
        Self::sample_half_open(rng, low, high)
    }
}

/// Range argument accepted by [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from this range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformSample> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::sample_inclusive(rng, low, high)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&w));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 gave {hits}/10000");
    }

    #[test]
    fn inclusive_range_at_type_max_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(9);
        let v = rng.gen_range(u8::MAX..=u8::MAX);
        assert_eq!(v, u8::MAX);
        // Full-domain inclusive range must reach values other than MAX.
        let any_small = (0..100).any(|_| rng.gen_range(u8::MIN..=u8::MAX) < 128);
        assert!(any_small);
    }
}

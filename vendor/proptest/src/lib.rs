//! Offline stand-in for the `proptest` property-testing crate (see
//! `vendor/README.md`).
//!
//! Provides the subset of the proptest API this workspace's tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`, implemented
//!   for integer ranges and tuples of strategies,
//! * [`collection::vec`] for vectors of strategy-generated elements,
//! * [`arbitrary::any`] (currently for `bool` and the primitive integers),
//! * the [`proptest!`], [`prop_assert!`] and [`prop_assert_eq!`] macros,
//! * [`test_runner::ProptestConfig`] with a configurable case count.
//!
//! Semantics match real proptest for passing tests: each `#[test]` runs its
//! body against `cases` randomly generated inputs and fails loudly (with the
//! inputs echoed) on the first counterexample. The differences: generation is
//! deterministic (seeded per test name, so failures reproduce trivially) and
//! there is **no shrinking** — a failing case is reported as generated rather
//! than minimized.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a test module typically imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The macro-generated test harness: runs each property against `cases`
/// generated inputs. Not part of the public proptest API surface; used by
/// the [`proptest!`] expansion.
///
/// Like upstream proptest, the `PROPTEST_CASES` environment variable
/// overrides the in-source case count — CI pins it for reproducible
/// wall-clock budgets, and developers can crank it up locally for soak
/// runs without editing every config.
#[doc(hidden)]
pub fn run_property<F>(test_name: &str, cases: u32, mut property: F)
where
    F: FnMut(&mut test_runner::TestRng, u32) -> Result<(), test_runner::TestCaseError>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(cases);
    // Seed from the test name so every test exercises a distinct but
    // reproducible stream.
    let seed = test_name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
        });
    let mut rng = test_runner::TestRng::from_seed(seed);
    for case in 0..cases {
        if let Err(err) = property(&mut rng, case) {
            panic!("proptest property '{test_name}' failed at case {case}/{cases}: {err}");
        }
    }
}

/// Declares property-based tests. Mirrors `proptest::proptest!`:
/// each `fn name(arg in strategy, ...) { body }` becomes a `#[test]` that
/// runs `body` against `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::run_property(stringify!($name), config.cases, |rng, _case| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), rng);)*
                    let inputs = format!(concat!($(stringify!($arg), " = {:#?}\n"),*), $(&$arg),*);
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    outcome.map_err(|e| e.with_inputs(&inputs))
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case
/// (with the generated inputs echoed) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n{}",
                    stringify!($left), stringify!($right), l, r, format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

//! Test-runner plumbing: configuration, the per-test RNG, and the error type
//! returned by failing property bodies.

use std::fmt;

pub use rand::rngs::StdRng as InnerRng;
use rand::SeedableRng;

/// Configuration for a [`proptest!`](crate::proptest) block, mirroring
/// `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration that runs `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic random source handed to strategies during generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: InnerRng,
}

impl TestRng {
    /// Creates a generator from a fixed 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            inner: InnerRng::seed_from_u64(seed),
        }
    }

    /// Access to the underlying [`rand`] generator.
    pub fn rng(&mut self) -> &mut InnerRng {
        &mut self.inner
    }
}

/// Failure raised by `prop_assert!` and friends inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
    inputs: Option<String>,
}

impl TestCaseError {
    /// A failed property with the given explanation.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
            inputs: None,
        }
    }

    /// Attaches the pretty-printed generated inputs to the failure report.
    pub fn with_inputs(mut self, inputs: &str) -> Self {
        self.inputs = Some(inputs.to_owned());
        self
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)?;
        if let Some(inputs) = &self.inputs {
            write!(f, "\ninputs:\n{inputs}")?;
        }
        Ok(())
    }
}

impl std::error::Error for TestCaseError {}

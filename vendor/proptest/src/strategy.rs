//! The [`Strategy`] trait and combinators: how random test inputs are
//! described and produced.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating random values of type [`Strategy::Value`],
/// mirroring `proptest::strategy::Strategy` (minus shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one random value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, like `Strategy::prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Chains generation: feeds each generated value to `f` to obtain the
    /// strategy that produces the final value, like `Strategy::prop_flat_map`.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        let intermediate = self.base.generate(rng);
        (self.f)(intermediate).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.rng().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A strategy that always yields clones of one value (`Just` in proptest).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

//! Strategies for collections, mirroring `proptest::collection`.

use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Bounds on a generated collection's length, converted from a fixed `usize`
/// or a `Range<usize>` just like proptest's `SizeRange`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max: range.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`:
/// `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng().gen_range(self.size.min..self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

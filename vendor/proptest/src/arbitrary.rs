//! `any::<T>()`, mirroring `proptest::arbitrary`.

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy of all values of `T`: `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng().gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rand::RngCore::next_u64(rng.rng()) as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

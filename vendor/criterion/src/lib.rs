//! Offline stand-in for the `criterion` benchmark harness (see
//! `vendor/README.md`).
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use — [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], [`BenchmarkId`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! plain wall-clock sampler: per benchmark it warms up, then takes up to
//! `sample_size` timed samples within the configured measurement time and
//! prints `min / mean / max` per iteration.
//!
//! No statistical analysis, no HTML reports, no comparison against saved
//! baselines — swap the real criterion back in for those. Passing `--test`
//! (as `cargo test --benches` does) runs every benchmark for a single
//! iteration as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Entry point handed to benchmark functions, mirroring `criterion::Criterion`.
pub struct Criterion {
    /// Smoke-test mode (`--test`): run each benchmark exactly once.
    test_mode: bool,
    /// Substring filter from the command line, like real criterion.
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        // First free-standing argument (not a `--flag` or its value) is the
        // benchmark name filter. Cargo's bench runner passes `--bench`.
        let mut filter = None;
        let mut skip_value = false;
        for arg in &args {
            if skip_value {
                skip_value = false;
                continue;
            }
            if arg == "--bench" || arg == "--test" || arg == "--nocapture" {
                continue;
            }
            if let Some(flag) = arg.strip_prefix("--") {
                // Flags with values we don't understand: skip the value too.
                skip_value = !flag.contains('=');
                continue;
            }
            filter = Some(arg.clone());
            break;
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }

    /// Benchmarks `f` outside of any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = id.label();
        let config = SampleConfig {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            test_mode: self.test_mode,
        };
        if self.matches_filter(&label) {
            run_benchmark(&label, &config, f);
        }
        self
    }

    fn matches_filter(&self, label: &str) -> bool {
        self.filter
            .as_deref()
            .is_none_or(|needle| label.contains(needle))
    }
}

/// A group of benchmarks sharing sampling configuration, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples > 0, "sample_size must be positive");
        self.sample_size = samples;
        self
    }

    /// Sets how long to run the routine before sampling starts.
    pub fn warm_up_time(&mut self, time: Duration) -> &mut Self {
        self.warm_up_time = time;
        self
    }

    /// Sets the time budget for collecting samples.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        let config = self.sample_config();
        if self.criterion.matches_filter(&label) {
            run_benchmark(&label, &config, f);
        }
        self
    }

    /// Benchmarks `f` with a borrowed input, like
    /// `BenchmarkGroup::bench_with_input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (The real criterion emits summary reports here; the
    /// shim prints per-benchmark lines as it goes, so this is a no-op.)
    pub fn finish(self) {}

    fn sample_config(&self) -> SampleConfig {
        SampleConfig {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            test_mode: self.criterion.test_mode,
        }
    }
}

/// Identifier of one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: Some(function_name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function_name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function_name, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("benchmark"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function_name: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function_name: Some(name),
            parameter: None,
        }
    }
}

#[derive(Debug, Clone)]
struct SampleConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

/// Timer handed to the benchmarked closure, mirroring `criterion::Bencher`.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_one_sample<F: FnMut(&mut Bencher)>(f: &mut F, iterations: u64) -> Duration {
    let mut bencher = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, config: &SampleConfig, mut f: F) {
    if config.test_mode {
        time_one_sample(&mut f, 1);
        println!("{label}: ok (test mode)");
        return;
    }

    // Warm-up: run single-iteration samples until the warm-up budget is
    // spent, using the last observation to size the measurement samples.
    let warm_up_start = Instant::now();
    let mut observed = time_one_sample(&mut f, 1);
    while warm_up_start.elapsed() < config.warm_up_time {
        observed = time_one_sample(&mut f, 1);
    }

    // Pick iterations-per-sample so `sample_size` samples roughly fill the
    // measurement budget.
    let per_iter = observed.max(Duration::from_nanos(1));
    let budget_per_sample = config.measurement_time / config.sample_size as u32;
    let iterations = (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1 << 20) as u64;

    let measurement_start = Instant::now();
    let mut samples = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let sample = time_one_sample(&mut f, iterations);
        samples.push(sample.as_secs_f64() / iterations as f64);
        if measurement_start.elapsed() > config.measurement_time * 2 {
            break; // routine much slower than the warm-up estimate
        }
    }

    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(0.0f64, f64::max);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{label}: [{} {} {}] ({} samples × {iterations} iter)",
        format_seconds(min),
        format_seconds(mean),
        format_seconds(max),
        samples.len(),
    );
}

fn format_seconds(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 3).label(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").label(), "p");
        assert_eq!(BenchmarkId::from("name").label(), "name");
    }

    #[test]
    fn bencher_measures_iterations() {
        let mut b = Bencher {
            iterations: 10,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 10);
    }
}

//! Offline stand-in for the real `serde` crate (see `vendor/README.md`).
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! annotations — no serializer is ever instantiated — so this shim provides
//! exactly that: marker traits and re-exported no-op derives. Code written
//! against it (derive attributes, `#[serde(skip)]`, `T: Serialize` bounds)
//! keeps compiling unchanged when the real serde is restored.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. The real trait's
/// `serialize<S: Serializer>` method is omitted because nothing in this
/// workspace instantiates a serializer.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`, mirroring the real
/// trait's lifetime parameter so bounds written against it stay compatible.
pub trait Deserialize<'de>: Sized {}

//! Offline stand-in for the real `serde_derive` proc-macro crate.
//!
//! This container has no network access to crates.io, so the workspace
//! vendors the minimal API surface it consumes (see `vendor/README.md`).
//! The derives here emit empty (marker) trait impls: they accept the same
//! syntax as the real derives — including inert `#[serde(...)]` helper
//! attributes such as `#[serde(skip)]` — and register the type as
//! `serde::Serialize` / `serde::Deserialize`, but no serialization code is
//! generated.  Swapping back to the real serde is a one-line change in the
//! workspace manifest.

use proc_macro::{TokenStream, TokenTree};

/// Extract the type name a derive was applied to: the identifier following
/// the first `struct` / `enum` / `union` keyword. Returns `None` for shapes
/// this shim does not handle (e.g. generic types), in which case the derive
/// expands to nothing.
fn derived_type_name(input: &TokenStream) -> Option<String> {
    let mut tokens = input.clone().into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    // Bail out on generic types: emitting a correct impl
                    // would require real parsing, and nothing in this
                    // workspace derives serde on a generic type.
                    if let Some(TokenTree::Punct(p)) = tokens.next() {
                        if p.as_char() == '<' {
                            return None;
                        }
                    }
                    return Some(name.to_string());
                }
            }
        }
    }
    None
}

/// No-op `#[derive(Serialize)]`: emits `impl serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match derived_type_name(&input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .unwrap_or_default(),
        None => TokenStream::new(),
    }
}

/// No-op `#[derive(Deserialize)]`: emits `impl serde::Deserialize for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match derived_type_name(&input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap_or_default(),
        None => TokenStream::new(),
    }
}

//! Criterion benchmarks for the d-hop preserving partition `DPar`
//! (Fig. 8(d)/(e)): partition time for a varying number of fragments and hop
//! bounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use quantified_graph_patterns::datasets::{pokec_like, yago_like, KnowledgeConfig, SocialConfig};
use quantified_graph_patterns::graph::Graph;
use quantified_graph_patterns::parallel::{dpar, PartitionConfig};

fn bench_graph(c: &mut Criterion, name: &str, graph: &Graph) {
    let mut group = c.benchmark_group(format!("fig8de/{name}"));
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for d in [1usize, 2] {
        for n in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("d{d}"), n),
                &PartitionConfig::new(n, d),
                |b, config| b.iter(|| dpar(graph, config)),
            );
        }
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let pokec = pokec_like(&SocialConfig::with_persons(2_000));
    let yago = yago_like(&KnowledgeConfig::with_persons(2_000));
    bench_graph(c, "pokec-like", &pokec);
    bench_graph(c, "yago2-like", &yago);
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);

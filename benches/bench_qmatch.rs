//! Criterion micro-benchmarks for sequential quantified matching
//! (Fig. 8(a) of the paper): `QMatch` vs `QMatchn` vs `Enum` on the
//! Pokec-like and YAGO2-like graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use quantified_graph_patterns::core::pattern::{library, Pattern};
use quantified_graph_patterns::{Engine, ExecOptions, MatchConfig};
use quantified_graph_patterns::datasets::{
    pokec_like, yago_like, KnowledgeConfig, SocialConfig,
};
use quantified_graph_patterns::graph::Graph;

fn configs() -> Vec<(&'static str, MatchConfig)> {
    vec![
        ("QMatch", MatchConfig::qmatch()),
        ("QMatchn", MatchConfig::qmatch_n()),
        ("Enum", MatchConfig::enumerate()),
    ]
}

fn bench_case(c: &mut Criterion, group_name: &str, graph: &Graph, pattern: &Pattern) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    // Prepared once per (pattern, config), like a serving deployment; each
    // iteration measures one execution of the prepared query.
    let mut prepared = Engine::new(graph)
        .prepare(pattern)
        .expect("library patterns validate");
    for (name, config) in configs() {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                prepared
                    .run(ExecOptions::sequential().with_config(*config))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_qmatch(c: &mut Criterion) {
    let pokec = pokec_like(&SocialConfig::with_persons(4_000));
    let yago = yago_like(&KnowledgeConfig::with_persons(4_000));

    bench_case(c, "fig8a/pokec-like/Q3(p=2)", &pokec, &library::q3_redmi_negation(2));
    bench_case(c, "fig8a/pokec-like/Q1(80%)", &pokec, &library::q1_music_club());
    bench_case(c, "fig8a/yago2-like/Q4(p=2)", &yago, &library::q4_uk_professors(2));
}

criterion_group!(benches, bench_qmatch);
criterion_main!(benches);

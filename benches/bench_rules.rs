//! Criterion benchmarks for QGAR evaluation and mining (Exp-3 of the paper):
//! `garMatch`, quantified entity identification, and the seed-and-strengthen
//! miner.

use criterion::{criterion_group, criterion_main, Criterion};

use quantified_graph_patterns::core::matching::MatchConfig;
use quantified_graph_patterns::core::pattern::{CountingQuantifier, PatternBuilder};
use quantified_graph_patterns::datasets::{pokec_like, SocialConfig};
use quantified_graph_patterns::rules::{
    evaluate_rule, identify_entities, mine_qgars, MiningConfig, Qgar,
};

fn album_rule() -> Qgar {
    let mut b = PatternBuilder::new();
    let xo = b.node("person");
    let z = b.node("person");
    let y = b.node("album");
    b.quantified_edge(xo, z, "follow", CountingQuantifier::at_least_percent(80.0));
    b.edge(z, y, "like");
    b.focus(xo);
    let antecedent = b.build().unwrap();

    let mut b = PatternBuilder::new();
    let xo = b.node("person");
    let y = b.node("album");
    b.edge(xo, y, "buy");
    b.focus(xo);
    let consequent = b.build().unwrap();
    Qgar::new("R1", antecedent, consequent).unwrap()
}

fn bench_rules(c: &mut Criterion) {
    let graph = pokec_like(&SocialConfig::with_persons(1_500));
    let rule = album_rule();

    let mut group = c.benchmark_group("exp3");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("garMatch/R1", |b| {
        b.iter(|| evaluate_rule(&graph, &rule, &MatchConfig::qmatch()).unwrap())
    });
    group.bench_function("QEI/R1(eta=0.5)", |b| {
        b.iter(|| identify_entities(&graph, &rule, 0.5, &MatchConfig::qmatch()).unwrap())
    });
    let mining = MiningConfig {
        min_support: 20,
        max_seed_features: 5,
        max_rules: 5,
        ..MiningConfig::default()
    };
    group.bench_function("mine_qgars", |b| {
        b.iter(|| mine_qgars(&graph, &mining).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_rules);
criterion_main!(benches);

//! Criterion benchmarks for parallel quantified matching (Fig. 8(b)/(c)):
//! `PQMatch` and its variants over a varying number of workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use quantified_graph_patterns::core::pattern::library;
use quantified_graph_patterns::datasets::{pokec_like, SocialConfig};
use quantified_graph_patterns::parallel::{dpar, PartitionConfig};
use quantified_graph_patterns::{Engine, ExecOptions, MatchConfig};

fn bench_parallel(c: &mut Criterion) {
    let graph = pokec_like(&SocialConfig::with_persons(4_000));
    let mut prepared = Engine::new(&graph)
        .prepare(&library::q3_redmi_negation(2))
        .expect("library patterns validate");

    let mut group = c.benchmark_group("fig8bc/pokec-like/Q3");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for n in [1usize, 2, 4] {
        let partition = dpar(&graph, &PartitionConfig::new(n, 2));
        for (name, config) in [
            ("PQMatch", MatchConfig::qmatch()),
            ("PQMatchn", MatchConfig::qmatch_n()),
            ("PEnum", MatchConfig::enumerate()),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &config, |b, config| {
                b.iter(|| {
                    prepared
                        .run(
                            ExecOptions::partitioned_threads(
                                partition.fragments(),
                                partition.d(),
                                2,
                            )
                            .with_config(*config),
                        )
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);

//! Parallel quantified matching: partition a graph with `DPar` and evaluate a
//! QGP with `PQMatch` over a growing number of workers, verifying that the
//! parallel answer equals the sequential one.
//!
//! ```text
//! cargo run --release --example parallel_matching
//! ```

use std::time::Instant;

use quantified_graph_patterns::core::pattern::library;
use quantified_graph_patterns::datasets::{pokec_like, SocialConfig};
use quantified_graph_patterns::parallel::{dpar, PartitionConfig};
use quantified_graph_patterns::{Engine, ExecOptions};

fn main() {
    let graph = pokec_like(&SocialConfig::with_persons(6_000));
    let engine = Engine::new(&graph);
    let mut prepared = engine
        .prepare(&library::q3_redmi_negation(2))
        .expect("library patterns validate");
    println!(
        "graph: {} nodes, {} edges; pattern radius {}",
        graph.node_count(),
        graph.edge_count(),
        prepared.radius()
    );

    // Sequential reference answer (the same prepared query runs every mode).
    let start = Instant::now();
    let sequential = prepared.run(ExecOptions::sequential()).unwrap();
    println!(
        "sequential QMatch: {} matches in {:.1} ms",
        sequential.len(),
        start.elapsed().as_secs_f64() * 1e3
    );

    // The partition is built once per d and reused for every pattern of
    // radius ≤ d (Section 5.2 of the paper).
    for n in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let partition = dpar(&graph, &PartitionConfig::new(n, 2));
        let partition_time = start.elapsed();

        let start = Instant::now();
        let matches = prepared
            .execute(ExecOptions::partitioned_threads(
                partition.fragments(),
                partition.d(),
                2,
            ))
            .expect("pattern radius fits the partition");
        let telemetry = matches.telemetry().cloned().expect("partitioned telemetry");
        let answer = matches.into_answer();
        let match_time = start.elapsed();

        assert_eq!(answer.matches, sequential.matches);
        println!(
            "n = {n}: partition {:>7.1} ms (skew {:.2})   PQMatch {:>7.1} ms   {} matches   worker times (ms): {:?}",
            partition_time.as_secs_f64() * 1e3,
            partition.stats().skew,
            match_time.as_secs_f64() * 1e3,
            answer.matches.len(),
            telemetry
                .worker_times
                .iter()
                .map(|d| (d.as_secs_f64() * 1e3).round() as u64)
                .collect::<Vec<_>>()
        );
    }

    println!("\nparallel answers equal the sequential answer for every n");
    println!("(run on a multi-core machine to observe the wall-clock speedup shape of Fig. 8(b))");
}

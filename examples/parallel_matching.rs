//! Parallel quantified matching: partition a graph with `DPar` and evaluate a
//! QGP with `PQMatch` over a growing number of workers, verifying that the
//! parallel answer equals the sequential one.
//!
//! ```text
//! cargo run --release --example parallel_matching
//! ```

use std::time::Instant;

use quantified_graph_patterns::core::matching::quantified_match;
use quantified_graph_patterns::core::pattern::library;
use quantified_graph_patterns::datasets::{pokec_like, SocialConfig};
use quantified_graph_patterns::parallel::{
    dpar, pqmatch, ParallelConfig, PartitionConfig,
};

fn main() {
    let graph = pokec_like(&SocialConfig::with_persons(6_000));
    let pattern = library::q3_redmi_negation(2);
    println!(
        "graph: {} nodes, {} edges; pattern radius {}",
        graph.node_count(),
        graph.edge_count(),
        pattern.radius()
    );

    // Sequential reference answer.
    let start = Instant::now();
    let sequential = quantified_match(&graph, &pattern).unwrap();
    println!(
        "sequential QMatch: {} matches in {:.1} ms",
        sequential.len(),
        start.elapsed().as_secs_f64() * 1e3
    );

    // The partition is built once per d and reused for every pattern of
    // radius ≤ d (Section 5.2 of the paper).
    for n in [1usize, 2, 4, 8] {
        let start = Instant::now();
        let partition = dpar(&graph, &PartitionConfig::new(n, 2));
        let partition_time = start.elapsed();

        let start = Instant::now();
        let answer = pqmatch(&pattern, &partition, &ParallelConfig::pqmatch(2)).unwrap();
        let match_time = start.elapsed();

        assert_eq!(answer.matches, sequential.matches);
        println!(
            "n = {n}: partition {:>7.1} ms (skew {:.2})   PQMatch {:>7.1} ms   {} matches   worker times (ms): {:?}",
            partition_time.as_secs_f64() * 1e3,
            partition.stats().skew,
            match_time.as_secs_f64() * 1e3,
            answer.matches.len(),
            answer
                .worker_times
                .iter()
                .map(|d| (d.as_secs_f64() * 1e3).round() as u64)
                .collect::<Vec<_>>()
        );
    }

    println!("\nparallel answers equal the sequential answer for every n");
    println!("(run on a multi-core machine to observe the wall-clock speedup shape of Fig. 8(b))");
}

//! Quickstart: build a small social graph, write a quantified graph pattern
//! with the builder DSL, prepare it once with the engine, and stream the
//! matches.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use quantified_graph_patterns::{
    CountingQuantifier, Engine, ExecOptions, GraphBuilder, PatternBuilder,
};

fn main() {
    // A small social graph: four users, their follow relationships, and who
    // recommends (or pans) the "Redmi 2A" phone.  This is graph G1 of the
    // paper's running example, extended slightly.
    let mut g = GraphBuilder::new();
    let ann = g.add_node("person");
    let bob = g.add_node("person");
    let cai = g.add_node("person");
    let dee = g.add_node("person");
    let fans = g.add_nodes("person", 4);
    let phone = g.add_node("Redmi 2A");

    // ann follows two fans, both recommend the phone.
    g.add_edge(ann, fans[0], "follow").unwrap();
    g.add_edge(ann, fans[1], "follow").unwrap();
    // bob follows three people; only one of them recommends (and none pans),
    // so bob fails the numeric aggregate alone.
    g.add_edge(bob, fans[2], "follow").unwrap();
    g.add_edge(bob, ann, "follow").unwrap();
    g.add_edge(bob, cai, "follow").unwrap();
    // cai follows two fans and one person who gave a bad rating.
    g.add_edge(cai, fans[2], "follow").unwrap();
    g.add_edge(cai, fans[3], "follow").unwrap();
    g.add_edge(cai, dee, "follow").unwrap();
    for &f in &fans {
        g.add_edge(f, phone, "recom").unwrap();
    }
    g.add_edge(dee, phone, "bad_rating").unwrap();
    let graph = g.build();

    println!(
        "graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // "Find people xo such that at least 2 of the people xo follows recommend
    //  the Redmi 2A, and nobody xo follows gave it a bad rating."
    // This is pattern Q3 of the paper: a numeric aggregate plus negation.
    let mut b = PatternBuilder::new();
    let xo = b.node_named("person", "xo");
    let z1 = b.node_named("person", "z1");
    let z2 = b.node_named("person", "z2");
    let redmi = b.node("Redmi 2A");
    b.quantified_edge(xo, z1, "follow", CountingQuantifier::at_least(2));
    b.edge(z1, redmi, "recom");
    b.negated_edge(xo, z2, "follow");
    b.edge(z2, redmi, "bad_rating");
    b.focus(xo);
    let pattern = b.build().expect("pattern is well-formed");

    println!("\npattern:\n{pattern}");

    // Prepare once: the pattern is validated and compiled (projection,
    // positified negation patterns, radius) exactly here.
    let engine = Engine::new(&graph);
    let mut prepared = engine.prepare(&pattern).expect("pattern validates");

    // Execute, streaming the matches as they are decided.
    let matches = prepared.execute(ExecOptions::sequential()).unwrap();
    let found: Vec<_> = matches.collect();
    println!("matches of the query focus: {found:?}");

    // The prepared query is reusable; a second execution reuses the cached
    // candidate analysis (watch sessions_built drop to 0).
    let answer = prepared.run(ExecOptions::sequential()).unwrap();
    let stats = answer.stats;
    assert_eq!(answer.matches, found);
    println!(
        "stats (2nd run): {} focus candidates, {} verified, {} isomorphisms, \
         {} pruned by upper bounds, {} sessions built",
        stats.focus_candidates,
        stats.focus_verified,
        stats.isomorphisms_found,
        stats.pruned_by_upper_bound,
        stats.sessions_built
    );

    // ann qualifies (2 recommenders, no bad rating in her followees);
    // bob fails the numeric aggregate; cai fails the negation.
    assert_eq!(found, vec![ann]);
    println!("\n=> only the first user satisfies the quantified pattern, as expected");
}

//! End-to-end parallel quickstart on the social dataset: build a Pokec-like
//! graph, partition it with `DPar`, evaluate a prepared QGP in the engine's
//! partitioned (`PQMatch`) mode, and mine QGARs — every parallel phase
//! scheduled through the shared work-stealing runtime (`qgp-runtime`).
//!
//! ```text
//! cargo run --release --example parallel_quickstart
//! QGP_THREADS=4 cargo run --release --example parallel_quickstart
//! ```

use std::time::Instant;

use quantified_graph_patterns::core::pattern::library;
use quantified_graph_patterns::datasets::{pokec_like, SocialConfig};
use quantified_graph_patterns::parallel::{dpar_with, PartitionConfig};
use quantified_graph_patterns::rules::{mine_qgars_with_report, MiningConfig};
use quantified_graph_patterns::{Engine, ExecOptions, Runtime};

fn main() {
    // One executor for every parallel phase below.  `Runtime::global()`
    // would honor QGP_THREADS; an explicit runtime pins the thread count.
    let runtime = Runtime::new(4);
    println!("runtime: {} worker threads\n", runtime.threads());

    // ---- 1. The social graph -------------------------------------------
    let graph = pokec_like(&SocialConfig::with_persons(6_000));
    println!(
        "graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // ---- 2. DPar: d-hop preserving partition ---------------------------
    // Node neighborhood scans run as stealable tasks; the partition is
    // built once and reused for every pattern of radius ≤ d.
    let t = Instant::now();
    let partition = dpar_with(&graph, &PartitionConfig::new(4, 2), &runtime);
    println!(
        "DPar: {} fragments (d = 2, skew {:.2}) in {:.1} ms",
        partition.len(),
        partition.stats().skew,
        t.elapsed().as_secs_f64() * 1e3
    );

    // ---- 3. Partitioned engine execution (PQMatch) ---------------------
    // Prepare the pattern once; the partitioned mode schedules one task per
    // covered focus candidate, idle threads steal candidate ranges, and
    // each thread lazily keeps one matcher session per fragment — all
    // sessions sharing the one compiled pattern.
    let engine = Engine::new(&graph);
    let mut prepared = engine
        .prepare(&library::q3_redmi_negation(2))
        .expect("library patterns validate");
    let t = Instant::now();
    let matches = prepared
        .execute(ExecOptions::partitioned_on(
            partition.fragments(),
            partition.d(),
            &runtime,
        ))
        .expect("pattern radius fits the partition");
    let telemetry = matches.telemetry().cloned().expect("partitioned telemetry");
    let stats = matches.stats();
    let answer = matches.into_answer();
    println!(
        "PQMatch Q3(p=2): {} matches in {:.1} ms ({} range steals, {} sessions built)",
        answer.matches.len(),
        t.elapsed().as_secs_f64() * 1e3,
        telemetry.steals,
        stats.sessions_built
    );
    // The same prepared query executes sequentially (the engine guarantees
    // one semantics across modes).
    let sequential = prepared.run(ExecOptions::sequential()).unwrap();
    assert_eq!(answer.matches, sequential.matches);
    println!("  ≡ sequential QMatch ({} matches)", sequential.len());

    // Top-10 serving: limit(10) stops verifying once 10 answers are found.
    let t = Instant::now();
    let top10 = prepared
        .run(ExecOptions::sequential().limit(10))
        .unwrap();
    println!(
        "  first 10 answers in {:.2} ms ({} candidates verified instead of {})\n",
        t.elapsed().as_secs_f64() * 1e3,
        top10.stats.focus_candidates,
        sequential.stats.focus_candidates,
    );

    // ---- 4. QGAR mining ------------------------------------------------
    // Each (antecedent, consequent) seed pair — including its whole
    // quantifier-strengthening ladder — is one stealable task.
    let config = MiningConfig {
        min_support: 10,
        confidence_threshold: 0.5,
        max_rules: 5,
        ..MiningConfig::default()
    };
    let t = Instant::now();
    let (rules, report) =
        mine_qgars_with_report(&graph, &config, &runtime).expect("mining succeeds");
    let busy: f64 = report.worker_busy.iter().map(|d| d.as_secs_f64()).sum();
    let critical = report
        .worker_busy
        .iter()
        .map(|d| d.as_secs_f64())
        .fold(0.0, f64::max);
    println!(
        "mined {} QGARs from {} seed pairs in {:.1} ms (busy {:.1} ms, critical path {:.1} ms)",
        rules.len(),
        report.pairs_explored,
        t.elapsed().as_secs_f64() * 1e3,
        busy * 1e3,
        critical * 1e3
    );
    for rule in &rules {
        println!(
            "  {}  support {} confidence {:.2}{}",
            rule.rule.name(),
            rule.evaluation.support,
            rule.evaluation.confidence,
            rule.strengthened_to
                .map(|p| format!("  (strengthened to ≥ {p}%)"))
                .unwrap_or_default()
        );
    }
}

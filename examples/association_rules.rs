//! Quantified graph association rules (QGARs): evaluate a hand-written rule
//! and mine rules automatically from a Pokec-like social graph (the Exp-3
//! study of the paper).
//!
//! ```text
//! cargo run --release --example association_rules
//! ```

use quantified_graph_patterns::core::matching::MatchConfig;
use quantified_graph_patterns::core::pattern::{CountingQuantifier, PatternBuilder};
use quantified_graph_patterns::datasets::{pokec_like, SocialConfig};
use quantified_graph_patterns::rules::{
    evaluate_rule, identify_entities, mine_qgars, MiningConfig, Qgar,
};

fn main() {
    let graph = pokec_like(&SocialConfig::with_persons(4_000));
    println!(
        "graph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // ---- A hand-written rule (R1 of the paper) --------------------------
    // "If xo is in a music club and ≥80% of the people xo follows like an
    //  album y, then xo will likely buy y."
    let mut b = PatternBuilder::new();
    let xo = b.node_named("person", "xo");
    let club = b.node("music club");
    let z = b.node_named("person", "z");
    let y = b.node_named("album", "y");
    b.edge(xo, club, "in");
    b.quantified_edge(xo, z, "follow", CountingQuantifier::at_least_percent(80.0));
    b.edge(z, y, "like");
    b.focus(xo);
    let antecedent = b.build().unwrap();

    let mut b = PatternBuilder::new();
    let xo = b.node_named("person", "xo");
    let y = b.node_named("album", "y");
    b.edge(xo, y, "buy");
    b.focus(xo);
    let consequent = b.build().unwrap();

    let r1 = Qgar::new("R1: music-club album buyers", antecedent, consequent).unwrap();
    let eval = evaluate_rule(&graph, &r1, &MatchConfig::qmatch()).unwrap();
    println!(
        "\n{}\n  antecedent matches: {}\n  support: {}\n  confidence (LCWA): {:.2}",
        r1.name(),
        eval.antecedent_matches.len(),
        eval.support,
        eval.confidence
    );

    let customers = identify_entities(&graph, &r1, 0.5, &MatchConfig::qmatch()).unwrap();
    println!("  potential customers identified at η = 0.5: {}", customers.len());

    // ---- Automatic QGAR mining (Exp-3) -----------------------------------
    let config = MiningConfig {
        focus_label: "person".to_owned(),
        min_support: 20,
        confidence_threshold: 0.5,
        max_rules: 6,
        ..MiningConfig::default()
    };
    let mined = mine_qgars(&graph, &config).unwrap();
    println!("\nmined {} QGARs with η = 0.5:", mined.len());
    for rule in &mined {
        println!(
            "  {:60}  support {:5}  confidence {:.2}  quantifier {}",
            rule.rule.name(),
            rule.evaluation.support,
            rule.evaluation.confidence,
            rule.strengthened_to
                .map(|p| format!(">= {p}%"))
                .unwrap_or_else(|| ">= 1".to_owned()),
        );
    }
    assert!(mined.iter().all(|r| r.evaluation.confidence >= 0.5));
}

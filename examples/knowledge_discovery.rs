//! Knowledge discovery: run the paper's knowledge-graph patterns Q4 and Q5 on
//! a YAGO2-like synthetic knowledge graph.
//!
//! ```text
//! cargo run --release --example knowledge_discovery
//! ```

use quantified_graph_patterns::core::pattern::library;
use quantified_graph_patterns::datasets::{yago_like, KnowledgeConfig};
use quantified_graph_patterns::graph::GraphStats;
use quantified_graph_patterns::{Engine, ExecOptions};

fn main() {
    let graph = yago_like(&KnowledgeConfig::with_persons(5_000));
    let stats = GraphStats::compute(&graph);
    println!(
        "knowledge graph: {} nodes, {} edges (avg out-degree {:.1})",
        stats.node_count, stats.edge_count, stats.avg_out_degree
    );
    let engine = Engine::new(&graph);

    // Q4: UK professors without a PhD who advised at least p students who are
    // professors in the UK (negation + numeric aggregate).
    for p in [1, 2, 3, 4] {
        let q4 = library::q4_uk_professors(p);
        let answer = engine
            .prepare(&q4)
            .unwrap()
            .run(ExecOptions::sequential())
            .unwrap();
        println!(
            "Q4 (≥{p} students): {:4} professors   (verified {}, pruned by upper bounds {})",
            answer.len(),
            answer.stats.focus_verified,
            answer.stats.pruned_by_upper_bound
        );
    }

    // Raising the threshold can only shrink the answer (anti-monotonicity).
    let run = |pattern| {
        engine
            .prepare(&pattern)
            .unwrap()
            .run(ExecOptions::sequential())
            .unwrap()
    };
    let loose = run(library::q4_uk_professors(1));
    let strict = run(library::q4_uk_professors(3));
    assert!(strict.len() <= loose.len());

    // Q5: non-UK professors who supervised students who are professors but
    // have no PhD (two negated edges).
    let answer = run(library::q5_non_uk_professors());
    println!(
        "Q5 (non-UK professors, students without PhD): {} matches",
        answer.len()
    );

    // Stream a few example entities for Q4 with p = 2: `limit(5)` stops
    // verifying candidates as soon as 5 answers are found.
    let mut q4 = engine.prepare(&library::q4_uk_professors(2)).unwrap();
    let preview: Vec<_> = q4
        .execute(ExecOptions::sequential().limit(5))
        .unwrap()
        .collect();
    println!("example Q4 matches (node ids): {preview:?}");
}

//! Knowledge discovery: run the paper's knowledge-graph patterns Q4 and Q5 on
//! a YAGO2-like synthetic knowledge graph.
//!
//! ```text
//! cargo run --release --example knowledge_discovery
//! ```

use quantified_graph_patterns::core::matching::quantified_match;
use quantified_graph_patterns::core::pattern::library;
use quantified_graph_patterns::datasets::{yago_like, KnowledgeConfig};
use quantified_graph_patterns::graph::GraphStats;

fn main() {
    let graph = yago_like(&KnowledgeConfig::with_persons(5_000));
    let stats = GraphStats::compute(&graph);
    println!(
        "knowledge graph: {} nodes, {} edges (avg out-degree {:.1})",
        stats.node_count, stats.edge_count, stats.avg_out_degree
    );

    // Q4: UK professors without a PhD who advised at least p students who are
    // professors in the UK (negation + numeric aggregate).
    for p in [1, 2, 3, 4] {
        let q4 = library::q4_uk_professors(p);
        let answer = quantified_match(&graph, &q4).unwrap();
        println!(
            "Q4 (≥{p} students): {:4} professors   (verified {}, pruned by upper bounds {})",
            answer.len(),
            answer.stats.focus_verified,
            answer.stats.pruned_by_upper_bound
        );
    }

    // Raising the threshold can only shrink the answer (anti-monotonicity).
    let loose = quantified_match(&graph, &library::q4_uk_professors(1)).unwrap();
    let strict = quantified_match(&graph, &library::q4_uk_professors(3)).unwrap();
    assert!(strict.len() <= loose.len());

    // Q5: non-UK professors who supervised students who are professors but
    // have no PhD (two negated edges).
    let q5 = library::q5_non_uk_professors();
    let answer = quantified_match(&graph, &q5).unwrap();
    println!(
        "Q5 (non-UK professors, students without PhD): {} matches",
        answer.len()
    );

    // Show a few example entities for Q4 with p = 2.
    let q4 = library::q4_uk_professors(2);
    let answer = quantified_match(&graph, &q4).unwrap();
    let preview: Vec<_> = answer.matches.iter().take(5).collect();
    println!("example Q4 matches (node ids): {preview:?}");
}

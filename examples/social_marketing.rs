//! Social media marketing: run the paper's example patterns Q1–Q3 against a
//! Pokec-like synthetic social network and identify potential customers.
//!
//! ```text
//! cargo run --release --example social_marketing
//! ```

use std::time::Instant;

use quantified_graph_patterns::core::pattern::library;
use quantified_graph_patterns::datasets::{pokec_like, SocialConfig};
use quantified_graph_patterns::{Engine, ExecOptions, MatchConfig};

fn main() {
    // A community-structured social graph in the shape of Pokec (people,
    // follow/like/recom/buy edges, clubs, albums, products).
    let graph = pokec_like(&SocialConfig::with_persons(5_000));
    println!(
        "social graph: {} nodes, {} edges, {} node labels, {} edge labels",
        graph.node_count(),
        graph.edge_count(),
        graph.labels().node_label_count(),
        graph.labels().edge_label_count()
    );

    let patterns = vec![
        (
            "Q1: in a music club, ≥80% of followees like an album",
            library::q1_music_club(),
        ),
        (
            "Q2: all followees recommend Redmi 2A",
            library::q2_redmi_universal(),
        ),
        (
            "Q3: ≥2 followees recommend Redmi 2A, none gave it a bad rating",
            library::q3_redmi_negation(2),
        ),
    ];

    let engine = Engine::new(&graph);
    for (description, pattern) in patterns {
        println!("\n--- {description}");
        // One prepared query per pattern; the three algorithm variants are
        // executions of it with different configs.
        let mut prepared = engine.prepare(&pattern).expect("library patterns validate");
        for (name, config) in [
            ("QMatch", MatchConfig::qmatch()),
            ("QMatchn", MatchConfig::qmatch_n()),
            ("Enum", MatchConfig::enumerate()),
        ] {
            let start = Instant::now();
            let answer = prepared
                .run(ExecOptions::sequential().with_config(config))
                .unwrap();
            println!(
                "  {name:8} {:5} potential customers   {:>8.1} ms   ({} candidates verified, {} isomorphisms)",
                answer.len(),
                start.elapsed().as_secs_f64() * 1e3,
                answer.stats.focus_verified,
                answer.stats.isomorphisms_found,
            );
        }
    }

    // The three algorithms must agree; QMatch just gets there with less work.
    let mut q3 = engine.prepare(&library::q3_redmi_negation(2)).unwrap();
    let a = q3
        .run(ExecOptions::sequential().with_config(MatchConfig::qmatch()))
        .unwrap();
    let b = q3
        .run(ExecOptions::sequential().with_config(MatchConfig::enumerate()))
        .unwrap();
    assert_eq!(a.matches, b.matches);
    println!("\nall algorithms agree on the answer set ({} matches for Q3)", a.len());
}
